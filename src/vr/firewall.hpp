// firewall.hpp — stateful firewall / TCP connection tracker (DESIGN.md §16).
//
// Tracks TCP connections through a compact state machine and refuses frames
// that do not belong to a tracked connection in an acceptable state — the
// textbook stateful-inspection policy. Non-TCP traffic passes stateless.
// The connection table is FlowTableV2 (DESIGN.md §14): the tracker packs
// its state enum into the table's int value slot, so a million tracked
// connections cost exactly what Exp 7 measured.
//
// The state machine deliberately tolerates the reorderings a multi-path
// network produces (the satellite-test edge cases):
//   * SYN-ACK reorder — the client's final ACK may overtake the server's
//     SYN-ACK; an ACK from the originator in kSynSent establishes.
//   * simultaneous open — a SYN from each side (RFC 9293 §3.5) is legal.
//   * RST mid-handshake — kills the connection in any state; the RST
//     itself passes (the peer must see it), later frames are refused.
#pragma once

#include <cstdint>
#include <memory>

#include "net/flow.hpp"
#include "net/flow_v2.hpp"
#include "vr/stateful.hpp"

namespace lvrm::vr {

/// Tracked-connection states, packed into FlowTableV2's value slot. The
/// table key is always the *originator's* tuple (the first SYN seen);
/// reply-direction frames look up the reversed tuple.
enum class ConnState : std::uint8_t {
  kSynSent = 1,     // originator SYN seen
  kSynAckSeen = 2,  // responder SYN-ACK seen (or simultaneous-open SYN)
  kEstablished = 3, // three-way handshake complete (possibly reordered)
  kFinWait = 4,     // a FIN passed; draining until idle expiry
  kReset = 5,       // an RST passed; everything after it is refused
};

const char* to_string(ConnState s);

class FirewallVr final : public StatefulVrBase {
 public:
  FirewallVr(std::unique_ptr<VirtualRouter> inner,
             std::size_t conn_capacity = 4096, Nanos idle_timeout = sec(30));

  VrKind kind() const override { return VrKind::kFirewall; }
  bool apply_delta(const net::StateDelta& delta) override;
  bool export_flow_state(const net::FiveTuple& flow,
                         net::StateDelta& out) const override;
  std::unique_ptr<VirtualRouter> clone() const override;

  std::size_t tracked() const { return conns_.size(); }
  std::uint64_t out_of_state_drops() const { return out_of_state_drops_; }

  /// Current state of the connection keyed by the originator tuple, or 0
  /// when untracked (tests).
  int conn_state(const net::FiveTuple& originator, Nanos now);

 protected:
  bool admit(net::FrameMeta& frame) override;
  Nanos state_cost(const net::FrameMeta& frame) const override;

 private:
  static net::FiveTuple reversed(const net::FiveTuple& t) {
    return net::FiveTuple{t.dst_ip, t.src_ip, t.dst_port, t.src_port,
                          t.protocol};
  }

  /// Advances the state machine for a frame belonging to a tracked
  /// connection. `from_originator` is the frame's direction. Returns
  /// whether the frame passes; writes the (possibly unchanged) next state.
  bool advance(ConnState state, std::uint8_t flags, bool from_originator,
               ConnState& next, bool& changed) const;

  void store(const net::FiveTuple& originator, ConnState s, Nanos now,
             std::uint8_t flags, bool emit_delta);

  mutable net::FlowTableV2 conns_;
  std::size_t conn_capacity_;
  Nanos idle_timeout_;
  Nanos last_now_ = 0;  // time of the last tracked frame (export probes)
  std::uint64_t out_of_state_drops_ = 0;
};

}  // namespace lvrm::vr
