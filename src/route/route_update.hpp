// route_update.hpp — dynamic route update messages.
//
// Sec 3.7: "If dynamic routes are used, the VRIs can be slightly changed to
// support both static and dynamic routes without affecting the design of
// LVRM" — and Sec 2.1's control queues exist precisely "to synchronize the
// routing state" between the VRIs of one VR. RouteUpdate is that message: a
// route add/withdraw with a compact wire encoding suitable for a control
// event payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "route/route_table.hpp"

namespace lvrm::route {

struct RouteUpdate {
  bool add = true;  // false = withdraw
  RouteEntry entry;

  bool operator==(const RouteUpdate&) const = default;
};

/// Fixed 15-byte wire format:
///   u8 op (1=add, 0=withdraw), u32 network, u8 length,
///   u32 next_hop, u8 output_if, u32 metric — all big-endian.
inline constexpr std::size_t kRouteUpdateWireSize = 15;

std::vector<std::uint8_t> encode_route_update(const RouteUpdate& update);

/// Decodes; nullopt on short buffers or invalid fields (op > 1, length > 32).
std::optional<RouteUpdate> decode_route_update(
    std::span<const std::uint8_t> data);

}  // namespace lvrm::route
