#include "route/arp_table.hpp"

namespace lvrm::route {

void ArpTable::learn(net::Ipv4Addr ip, const net::MacAddr& mac, Nanos now) {
  entries_[ip] = Entry{mac, now};
}

std::optional<net::MacAddr> ArpTable::resolve(net::Ipv4Addr ip,
                                              Nanos now) const {
  const auto it = entries_.find(ip);
  if (it == entries_.end()) return std::nullopt;
  if (ttl_ > 0 && now - it->second.learned_at > ttl_) return std::nullopt;
  return it->second.mac;
}

std::size_t ArpTable::expire(Nanos now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (ttl_ > 0 && now - it->second.learned_at > ttl_) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace lvrm::route
