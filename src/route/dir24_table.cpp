#include "route/dir24_table.hpp"

#include <algorithm>

namespace lvrm::route {

Dir24Table::Dir24Table() { rebuild({}); }

Dir24Table::Dir24Table(const std::vector<RouteEntry>& routes) {
  rebuild(routes);
}

void Dir24Table::rebuild(const std::vector<RouteEntry>& routes) {
  top_.assign(1u << 24, 0);
  second_.clear();
  long_blocks_ = 0;

  // Deduplicate by prefix (last one wins), then sort ascending by prefix
  // length so longer prefixes overwrite shorter ones during expansion.
  routes_.clear();
  for (const RouteEntry& r : routes) {
    RouteEntry canonical = r;
    canonical.prefix.network &= net::prefix_mask(r.prefix.length);
    const auto existing =
        std::find_if(routes_.begin(), routes_.end(), [&](const RouteEntry& e) {
          return e.prefix == canonical.prefix;
        });
    if (existing != routes_.end()) {
      *existing = canonical;
    } else {
      routes_.push_back(canonical);
    }
  }
  std::vector<std::size_t> order(routes_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return routes_[a].prefix.length <
                            routes_[b].prefix.length;
                   });

  auto ensure_block = [this](Slot& slot) -> std::uint32_t* {
    if ((slot & kIndirect) == 0) {
      // Promote: fill a fresh block with the current short-route index.
      const auto block = static_cast<std::uint32_t>(second_.size() / 256);
      second_.insert(second_.end(), 256, slot);
      ++long_blocks_;
      slot = kIndirect | (block + 1);
    }
    return &second_[((slot & ~kIndirect) - 1) * 256];
  };

  for (const std::size_t idx : order) {
    const RouteEntry& r = routes_[idx];
    const auto route_ref = static_cast<Slot>(idx + 1);
    if (r.prefix.length <= 24) {
      // Expand into every covered /24 slot (and any existing sub-blocks).
      const std::uint32_t first = r.prefix.network >> 8;
      const std::uint32_t count = 1u << (24 - r.prefix.length);
      for (std::uint32_t i = 0; i < count; ++i) {
        Slot& slot = top_[first + i];
        if (slot & kIndirect) {
          std::uint32_t* block = &second_[((slot & ~kIndirect) - 1) * 256];
          for (int j = 0; j < 256; ++j) block[j] = route_ref;
        } else {
          slot = route_ref;
        }
      }
    } else {
      Slot& slot = top_[r.prefix.network >> 8];
      std::uint32_t* block = ensure_block(slot);
      const std::uint32_t first = r.prefix.network & 0xFF;
      const std::uint32_t count = 1u << (32 - r.prefix.length);
      for (std::uint32_t i = 0; i < count; ++i) block[first + i] = route_ref;
    }
  }
}

std::optional<RouteEntry> Dir24Table::lookup(net::Ipv4Addr dst) const {
  Slot slot = top_[dst >> 8];
  if (slot & kIndirect)
    slot = second_[((slot & ~kIndirect) - 1) * 256 + (dst & 0xFF)];
  if (slot == 0) return std::nullopt;
  return routes_[slot - 1];
}

}  // namespace lvrm::route
