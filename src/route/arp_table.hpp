// arp_table.hpp — address-resolution cache.
//
// VRIs are "responsible for interpreting the address resolution" (Sec 3.7):
// when a VR forwards a frame it must rewrite the destination MAC for the
// next hop. ArpTable is the static/learned IP->MAC cache the C++ VR and the
// Click VR's EtherEncap-style element consult.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/units.hpp"
#include "net/ip.hpp"
#include "net/mac.hpp"

namespace lvrm::route {

class ArpTable {
 public:
  explicit ArpTable(Nanos entry_ttl = sec(300)) : ttl_(entry_ttl) {}

  void learn(net::Ipv4Addr ip, const net::MacAddr& mac, Nanos now);

  /// Resolves an address; expired entries miss.
  std::optional<net::MacAddr> resolve(net::Ipv4Addr ip, Nanos now) const;

  /// Drops expired entries; returns how many were removed.
  std::size_t expire(Nanos now);

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    net::MacAddr mac;
    Nanos learned_at;
  };
  Nanos ttl_;
  std::unordered_map<net::Ipv4Addr, Entry> entries_;
};

}  // namespace lvrm::route
