// route_table.hpp — longest-prefix-match routing table.
//
// Each VRI interprets "the address resolution and routing information"
// (Sec 3.7); its routes are "initialized with the map files, which pass the
// static routes to the memories of the VRIs". RouteTable is a binary trie
// keyed on destination prefixes — O(32) lookup, no allocation on the lookup
// path — with the usual longest-match semantics plus an optional default
// route (0.0.0.0/0).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.hpp"

namespace lvrm::route {

struct RouteEntry {
  net::Prefix prefix;
  int output_if = 0;            // gateway interface to forward on
  net::Ipv4Addr next_hop = 0;   // 0 = directly connected
  int metric = 0;

  bool operator==(const RouteEntry&) const = default;
};

class RouteTable {
 public:
  RouteTable();
  ~RouteTable();
  RouteTable(RouteTable&&) noexcept;
  RouteTable& operator=(RouteTable&&) noexcept;
  RouteTable(const RouteTable&) = delete;
  RouteTable& operator=(const RouteTable&) = delete;

  /// Inserts or replaces the route for exactly this prefix.
  void insert(const RouteEntry& entry);

  /// Removes the route for exactly this prefix; false if absent.
  bool remove(const net::Prefix& prefix);

  /// Longest-prefix match; nullopt when no route (not even default) covers
  /// the address.
  std::optional<RouteEntry> lookup(net::Ipv4Addr dst) const;

  /// Exact-prefix fetch (no LPM); for tests and management.
  std::optional<RouteEntry> find_exact(const net::Prefix& prefix) const;

  std::size_t size() const { return size_; }

  /// All routes in ascending (network, length) order.
  std::vector<RouteEntry> dump() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

/// Parses the map-file format the VRIs load at start-up. One route per line:
///     <prefix> <output-if> [next-hop] [metric]
/// e.g. "10.2.0.0/16 1 0.0.0.0 5". '#' starts a comment; blank lines are
/// skipped. Throws std::runtime_error naming the offending line on error.
std::vector<RouteEntry> parse_route_map(const std::string& text);

/// Serializes routes back into map-file form (round-trips parse_route_map).
std::string format_route_map(const std::vector<RouteEntry>& routes);

}  // namespace lvrm::route
