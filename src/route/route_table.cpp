#include "route/route_table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace lvrm::route {

struct RouteTable::Node {
  std::unique_ptr<Node> child[2];
  std::optional<RouteEntry> entry;
};

RouteTable::RouteTable() : root_(std::make_unique<Node>()) {}
RouteTable::~RouteTable() = default;
RouteTable::RouteTable(RouteTable&&) noexcept = default;
RouteTable& RouteTable::operator=(RouteTable&&) noexcept = default;

namespace {
/// Bit `i` (0 = most significant) of an address.
int bit_at(net::Ipv4Addr addr, int i) { return (addr >> (31 - i)) & 1; }
}  // namespace

void RouteTable::insert(const RouteEntry& entry) {
  Node* node = root_.get();
  for (int i = 0; i < entry.prefix.length; ++i) {
    const int b = bit_at(entry.prefix.network, i);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->entry) ++size_;
  RouteEntry canonical = entry;
  canonical.prefix.network &= net::prefix_mask(entry.prefix.length);
  node->entry = canonical;
}

bool RouteTable::remove(const net::Prefix& prefix) {
  Node* node = root_.get();
  for (int i = 0; i < prefix.length; ++i) {
    const int b = bit_at(prefix.network, i);
    if (!node->child[b]) return false;
    node = node->child[b].get();
  }
  if (!node->entry) return false;
  node->entry.reset();
  --size_;
  return true;  // empty branches are left in place; negligible for our sizes
}

std::optional<RouteEntry> RouteTable::lookup(net::Ipv4Addr dst) const {
  const Node* node = root_.get();
  std::optional<RouteEntry> best = node->entry;  // default route, if any
  for (int i = 0; i < 32 && node; ++i) {
    node = node->child[bit_at(dst, i)].get();
    if (node && node->entry) best = node->entry;
  }
  return best;
}

std::optional<RouteEntry> RouteTable::find_exact(
    const net::Prefix& prefix) const {
  const Node* node = root_.get();
  for (int i = 0; i < prefix.length; ++i) {
    node = node->child[bit_at(prefix.network, i)].get();
    if (!node) return std::nullopt;
  }
  return node->entry;
}

std::vector<RouteEntry> RouteTable::dump() const {
  std::vector<RouteEntry> out;
  // Depth-first walk; recursion depth bounded by 32.
  struct Walker {
    std::vector<RouteEntry>& out;
    void walk(const Node* node) {
      if (!node) return;
      if (node->entry) out.push_back(*node->entry);
      walk(node->child[0].get());
      walk(node->child[1].get());
    }
  } walker{out};
  walker.walk(root_.get());
  std::sort(out.begin(), out.end(), [](const RouteEntry& a, const RouteEntry& b) {
    if (a.prefix.network != b.prefix.network)
      return a.prefix.network < b.prefix.network;
    return a.prefix.length < b.prefix.length;
  });
  return out;
}

std::vector<RouteEntry> parse_route_map(const std::string& text) {
  std::vector<RouteEntry> routes;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string prefix_str;
    if (!(fields >> prefix_str)) continue;  // blank/comment line

    const auto prefix = net::parse_prefix(prefix_str);
    if (!prefix)
      throw std::runtime_error("route map line " + std::to_string(lineno) +
                               ": bad prefix '" + prefix_str + "'");
    RouteEntry entry;
    entry.prefix = *prefix;
    if (!(fields >> entry.output_if))
      throw std::runtime_error("route map line " + std::to_string(lineno) +
                               ": missing output interface");
    std::string next_hop_str;
    if (fields >> next_hop_str) {
      const auto nh = net::parse_ipv4(next_hop_str);
      if (!nh)
        throw std::runtime_error("route map line " + std::to_string(lineno) +
                                 ": bad next hop '" + next_hop_str + "'");
      entry.next_hop = *nh;
      fields >> entry.metric;  // optional; leave 0 when absent
    }
    routes.push_back(entry);
  }
  return routes;
}

std::string format_route_map(const std::vector<RouteEntry>& routes) {
  std::ostringstream os;
  for (const auto& r : routes) {
    os << net::format_ipv4(r.prefix.network) << '/' << r.prefix.length << ' '
       << r.output_if << ' ' << net::format_ipv4(r.next_hop) << ' ' << r.metric
       << '\n';
  }
  return os.str();
}

}  // namespace lvrm::route
