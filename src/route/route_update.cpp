#include "route/route_update.hpp"

namespace lvrm::route {

namespace {
void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t off) {
  return static_cast<std::uint32_t>(in[off]) << 24 |
         static_cast<std::uint32_t>(in[off + 1]) << 16 |
         static_cast<std::uint32_t>(in[off + 2]) << 8 | in[off + 3];
}
}  // namespace

std::vector<std::uint8_t> encode_route_update(const RouteUpdate& update) {
  std::vector<std::uint8_t> out;
  out.reserve(kRouteUpdateWireSize);
  out.push_back(update.add ? 1 : 0);
  put32(out, update.entry.prefix.network);
  out.push_back(static_cast<std::uint8_t>(update.entry.prefix.length));
  put32(out, update.entry.next_hop);
  out.push_back(static_cast<std::uint8_t>(update.entry.output_if));
  put32(out, static_cast<std::uint32_t>(update.entry.metric));
  return out;
}

std::optional<RouteUpdate> decode_route_update(
    std::span<const std::uint8_t> data) {
  if (data.size() < kRouteUpdateWireSize) return std::nullopt;
  if (data[0] > 1) return std::nullopt;
  RouteUpdate update;
  update.add = data[0] == 1;
  update.entry.prefix.network = get32(data, 1);
  update.entry.prefix.length = data[5];
  if (update.entry.prefix.length > 32) return std::nullopt;
  update.entry.prefix.network &=
      net::prefix_mask(update.entry.prefix.length);
  update.entry.next_hop = get32(data, 6);
  update.entry.output_if = data[10];
  update.entry.metric = static_cast<int>(get32(data, 11));
  return update;
}

}  // namespace lvrm::route
