// dir24_table.hpp — DIR-24-8 full-expansion route lookup.
//
// An alternative longest-prefix-match implementation to the binary trie in
// route_table.hpp, in the spirit of LVRM's "each component can support
// different variants of implementation". DIR-24-8 (Gupta et al., the classic
// line-rate software lookup) trades memory for speed: a 2^24-entry first
// table resolves any prefix up to /24 in a single load; prefixes longer than
// /24 indirect into per-/24 second-level tables of 256 entries.
//
// The table is built once from a route list (rebuild on change); lookup is
// one or two array reads with no branching on prefix length.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "route/route_table.hpp"

namespace lvrm::route {

class Dir24Table {
 public:
  Dir24Table();

  /// Builds from a route list; later duplicates of the same prefix replace
  /// earlier ones (matching RouteTable::insert semantics).
  explicit Dir24Table(const std::vector<RouteEntry>& routes);

  void rebuild(const std::vector<RouteEntry>& routes);

  /// Longest-prefix match; nullopt when nothing (not even a default) covers.
  std::optional<RouteEntry> lookup(net::Ipv4Addr dst) const;

  std::size_t route_count() const { return routes_.size(); }
  /// Number of second-level /24 blocks allocated (memory diagnostics).
  std::size_t overflow_blocks() const { return long_blocks_; }

 private:
  // A slot is either 0 (no route), (index+1) into routes_ with the high bit
  // clear, or (block_index+1) with the high bit set -> second-level table.
  using Slot = std::uint32_t;
  static constexpr Slot kIndirect = 0x8000'0000u;

  std::vector<Slot> top_;                  // 2^24 slots
  std::vector<std::uint32_t> second_;      // blocks of 256 route indices (+1)
  std::vector<RouteEntry> routes_;
  std::size_t long_blocks_ = 0;
};

}  // namespace lvrm::route
