// flow.hpp — 5-tuple flows and the connection-tracking hash table.
//
// Flow-based load balancing (Sec 3.3, Fig 3.3 "balance") must send every
// frame of a flow to the VRI that served the flow's first frame, so frames
// are never reordered within a flow. The thesis explicitly replaced dynamic
// arrays with a hash table "for the performance issues in the connection
// tracking functions, which are called for each incoming data frame", and
// stamps entries with a timestamp on each hit. FlowTable reproduces that:
// open-addressing, linear probing, per-entry last-seen time, idle expiry.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "net/frame.hpp"
#include "net/ip.hpp"

namespace lvrm::net {

struct FiveTuple {
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  bool operator==(const FiveTuple&) const = default;

  static FiveTuple from_frame(const FrameMeta& f) {
    return FiveTuple{f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.protocol};
  }
};

/// 64-bit mix hash over the tuple fields (xxhash-style avalanche).
std::uint64_t hash_tuple(const FiveTuple& t);

/// Connection-tracking table mapping flows to VRI indices.
class FlowTable {
 public:
  /// `capacity_hint` is rounded up to a power of two; the table rehashes
  /// when live entries PLUS tombstones exceed load factor 0.7 — tombstones
  /// lengthen probe chains exactly like live entries, so a churned table
  /// (connect/disconnect cycles) must rebuild even when `size()` stays
  /// small. The rebuild doubles only when live entries alone warrant it;
  /// otherwise it rehashes at the same size, purging tombstones.
  /// `idle_timeout` expires entries not seen for that long (expired entries
  /// are reclaimed lazily on probe).
  explicit FlowTable(std::size_t capacity_hint = 1024,
                     Nanos idle_timeout = sec(30));

  /// Looks up the flow, refreshing its timestamp on hit.
  std::optional<int> lookup(const FiveTuple& t, Nanos now);

  /// Inserts/overwrites the flow's VRI assignment.
  void insert(const FiveTuple& t, int vri, Nanos now);

  /// Removes all entries assigned to `vri` (called when a VRI is destroyed
  /// so stale assignments cannot point at a dead instance). Returns how
  /// many live flows were evicted — the drain path reports that as the
  /// number of flows migrated to siblings.
  std::size_t evict_vri(int vri);

  std::size_t size() const { return live_; }
  std::size_t tombstones() const { return tombstones_; }
  std::size_t bucket_count() const { return slots_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  enum class State : std::uint8_t { kEmpty, kLive, kTombstone };

  struct Slot {
    FiveTuple tuple;
    Nanos last_seen = 0;
    int vri = -1;
    State state = State::kEmpty;
  };

  std::size_t probe(const FiveTuple& t) const;  // slot of t or of first free
  void rehash(std::size_t buckets);
  bool expired(const Slot& s, Nanos now) const {
    return idle_timeout_ > 0 && now - s.last_seen > idle_timeout_;
  }

  std::vector<Slot> slots_;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t mask_ = 0;
  Nanos idle_timeout_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lvrm::net
