// flow.hpp — 5-tuple flows and the connection-tracking hash table.
//
// Flow-based load balancing (Sec 3.3, Fig 3.3 "balance") must send every
// frame of a flow to the VRI that served the flow's first frame, so frames
// are never reordered within a flow. The thesis explicitly replaced dynamic
// arrays with a hash table "for the performance issues in the connection
// tracking functions, which are called for each incoming data frame", and
// stamps entries with a timestamp on each hit. FlowTable reproduces that:
// open-addressing, linear probing, per-entry last-seen time, idle expiry.
//
// FlowTable is the paper-scale reference (thousands of flows). The
// million-flow successor, FlowTableV2 (cache-line-bucketed tags, incremental
// resize, idle-expiry GC wheel — DESIGN.md §14), lives in flow_v2.hpp and is
// selected per dispatcher by LvrmConfig::flow_table_v2. Both share FiveTuple,
// hash_tuple and the resize-event vocabulary below.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "net/frame.hpp"
#include "net/ip.hpp"

namespace lvrm::net {

struct FiveTuple {
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  bool operator==(const FiveTuple&) const = default;

  static FiveTuple from_frame(const FrameMeta& f) {
    return FiveTuple{f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.protocol};
  }
};

/// 64-bit mix hash over the tuple fields (xxhash-style avalanche).
std::uint64_t hash_tuple(const FiveTuple& t);

/// The tuple packed into two words — the exact representation FlowTableV2
/// stores per slot, so a stored key can be re-hashed (cuckoo displacement,
/// incremental migration) without unpacking back to a FiveTuple.
struct PackedTuple {
  std::uint64_t a = 0;  // src_ip:32 | dst_ip:32
  std::uint64_t b = 0;  // src_port:32 | dst_port:16 | protocol:8 (zero-padded)

  bool operator==(const PackedTuple&) const = default;
};

PackedTuple pack_tuple(const FiveTuple& t);

/// Avalanche over the packed words; hash_tuple(t) == hash_packed(pack_tuple(t)).
std::uint64_t hash_packed(PackedTuple k);

/// Why a flow table rebuilt (or, for the v2 table, ran its incremental
/// migration). Carried on the `flowtable_resize` audit events so a trace
/// answers "why did the table churn at t=4.2s?" without a re-run.
enum class FlowResizeCause : std::uint8_t {
  kLoadFactor = 0,      // live entries passed the load factor: capacity doubles
  kTombstonePurge = 1,  // v1 only: churned tombstones forced a same-size rebuild
  kIncrementalStep = 2, // v2 only: a bounded-work migration finished draining
};

const char* to_string(FlowResizeCause c);

/// One resize episode. The v1 table emits a single event per stop-the-world
/// rehash; the v2 table emits one at migration start (migrated == 0) and one
/// at completion (migrated == buckets_before), never per step — a 16M-entry
/// migration is ~2M steps and would drown the audit ring.
struct FlowResizeEvent {
  FlowResizeCause cause = FlowResizeCause::kLoadFactor;
  std::size_t buckets_before = 0;  // slot capacity before
  std::size_t buckets_after = 0;   // slot capacity after
  std::size_t migrated = 0;        // entries moved so far (v2), 0|live for v1
};

using FlowResizeHook = std::function<void(const FlowResizeEvent&)>;

/// Connection-tracking table mapping flows to VRI indices.
class FlowTable {
 public:
  /// Sentinel returned by probe() when the table holds neither the key nor
  /// any free slot — a genuinely full table. Public so the regression tests
  /// can assert the failure mode instead of the silent slot-0 aliasing this
  /// replaced.
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// `capacity_hint` is rounded up to a power of two; the table rehashes
  /// when live entries PLUS tombstones exceed load factor 0.7 — tombstones
  /// lengthen probe chains exactly like live entries, so a churned table
  /// (connect/disconnect cycles) must rebuild even when `size()` stays
  /// small. The rebuild doubles only when live entries alone warrant it;
  /// otherwise it rehashes at the same size, purging tombstones.
  /// `idle_timeout` expires entries not seen for that long (expired entries
  /// are reclaimed lazily on probe).
  explicit FlowTable(std::size_t capacity_hint = 1024,
                     Nanos idle_timeout = sec(30));

  /// Looks up the flow, refreshing its timestamp on hit.
  std::optional<int> lookup(const FiveTuple& t, Nanos now);

  /// Inserts/overwrites the flow's VRI assignment. Returns false — loudly,
  /// with an error log — when the table is full and `max_buckets` forbids
  /// growing; the flow stays untracked rather than aliasing another flow's
  /// slot (the pre-fix behavior).
  bool insert(const FiveTuple& t, int vri, Nanos now);

  /// Removes all entries assigned to `vri` (called when a VRI is destroyed
  /// so stale assignments cannot point at a dead instance). Returns how
  /// many live flows were evicted — the drain path reports that as the
  /// number of flows migrated to siblings.
  std::size_t evict_vri(int vri);

  /// Caps growth: rehash never exceeds this many slots (0 = unbounded, the
  /// default). With a cap, a full table makes insert() fail instead of
  /// growing — the regression surface for the probe() sentinel.
  void set_max_buckets(std::size_t cap) { max_buckets_ = cap; }

  /// Observer called once per stop-the-world rehash with its cause.
  void set_resize_hook(FlowResizeHook hook) { on_resize_ = std::move(hook); }

  std::size_t size() const { return live_; }
  std::size_t tombstones() const { return tombstones_; }
  std::size_t bucket_count() const { return slots_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t insert_failures() const { return insert_failures_; }

 private:
  enum class State : std::uint8_t { kEmpty, kLive, kTombstone };

  struct Slot {
    FiveTuple tuple;
    Nanos last_seen = 0;
    int vri = -1;
    State state = State::kEmpty;
  };

  /// Slot of t, or of the first free slot of its chain, or kNoSlot when the
  /// table is full and t absent.
  std::size_t probe(const FiveTuple& t) const;
  void rehash(std::size_t buckets, FlowResizeCause cause);
  bool expired(const Slot& s, Nanos now) const {
    return idle_timeout_ > 0 && now - s.last_seen > idle_timeout_;
  }

  std::vector<Slot> slots_;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t mask_ = 0;
  std::size_t max_buckets_ = 0;
  Nanos idle_timeout_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insert_failures_ = 0;
  FlowResizeHook on_resize_;
};

}  // namespace lvrm::net
