// frame_pool.hpp — shared-memory frame arena + 32-bit descriptor handles.
//
// The thesis' LVRM moves packet bytes exactly once: the capture path writes a
// frame into a per-queue shm segment (Sec 3.8) and everything downstream
// passes *references* to it. Our simulated hot path historically copied the
// ~128-byte FrameMeta by value at every ring hop, so one frame was memcpy'd
// 3-5x between RX ingress and TX completion. FramePool restores the paper's
// economy: frames live in cache-line-aligned slots inside a ShmArena segment
// (same shmget/shmat protocol the queues use) and the rings carry a 32-bit
// FrameHandle descriptor instead of the payload.
//
// Handle layout — {generation:8 | slot index:24}:
//   * the index addresses one of up to 2^24 slots;
//   * the generation is bumped on every release, so a stale handle (kept
//     across a free, the classic use-after-free of descriptor schemes) is
//     caught by the debug-build validity asserts instead of silently reading
//     a recycled frame.
//
// Recycling runs through a lock-free SPSC free-list ring: slot indices are
// pushed at release and popped at acquire. That restricts the pool to ONE
// acquiring endpoint and ONE releasing endpoint at a time — exactly the
// LvrmSystem discipline, where the (simulated) cores interleave on one host
// thread: ingress acquires, TX completion / drop paths release. The free
// list is sized >= capacity, so a release can never fail.
//
// Exhaustion is not an error: acquire() returns kInvalidFrameHandle, bumps
// the exhausted counter, and the caller drops the newest frame (RX tail-drop
// semantics, same as a full RX ring).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <variant>

#include "net/frame.hpp"
#include "queue/shm_arena.hpp"
#include "queue/spsc_ring.hpp"

namespace lvrm::net {

/// 32-bit descriptor naming one pooled frame: {generation:8 | index:24}.
using FrameHandle = std::uint32_t;

inline constexpr FrameHandle kInvalidFrameHandle = 0xFFFFFFFFu;
inline constexpr std::uint32_t kFrameHandleIndexBits = 24;
inline constexpr std::uint32_t kFrameHandleIndexMask =
    (1u << kFrameHandleIndexBits) - 1u;

class FramePool {
 public:
  /// One pooled frame. The generation counter shares the slot's line tail —
  /// it is only touched at acquire/release, never per hop — and is atomic so
  /// the two-endpoint (RX thread / TX thread) regime stays race-free under
  /// TSan without any per-hop cost.
  struct alignas(queue::kCacheLine) Slot {
    FrameMeta meta;
    std::atomic<std::uint8_t> generation{0};
  };

  /// Carves `capacity` slots out of `arena` (one segment, created here and
  /// destroyed with the pool) and seeds the free list with every index.
  /// `arena` must outlive the pool.
  FramePool(queue::ShmArena& arena, std::size_t capacity);
  ~FramePool();

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// Takes a free slot; kInvalidFrameHandle when the pool is exhausted (the
  /// caller owns the drop accounting). Single acquiring endpoint only — the
  /// counters it writes are single-writer, so a plain load+store (no
  /// lock-prefixed RMW) keeps this off the per-frame critical path.
  FrameHandle acquire() {
    const auto idx = free_list_.try_pop();
    if (!idx) {
      bump(exhausted_);
      return kInvalidFrameHandle;
    }
    bump(acquired_);
    const std::uint32_t gen =
        slots_[*idx].generation.load(std::memory_order_relaxed);
    return (gen << kFrameHandleIndexBits) | *idx;
  }

  /// Returns a slot to the free list and invalidates outstanding handles to
  /// it (generation bump). Single releasing endpoint only; never fails. The
  /// generation has exactly this one writer, so the bump is a load+store
  /// rather than an atomic RMW.
  void release(FrameHandle h) {
    const std::uint32_t idx = h & kFrameHandleIndexMask;
    assert(idx < capacity_ && "release: handle index out of range");
    const std::uint8_t gen =
        slots_[idx].generation.load(std::memory_order_relaxed);
    assert(((h >> kFrameHandleIndexBits) & 0xFFu) == gen &&
           "release: stale handle (double free?)");
    slots_[idx].generation.store(static_cast<std::uint8_t>(gen + 1),
                                 std::memory_order_relaxed);
    bump(released_);
    const bool ok = free_list_.try_push(idx);
    assert(ok && "free list sized >= capacity; push cannot fail");
    (void)ok;
  }

  /// Resolves a handle to its slot's frame. Debug builds verify the
  /// generation so stale handles fault loudly instead of aliasing a
  /// recycled frame.
  FrameMeta& at(FrameHandle h) {
    const std::uint32_t idx = h & kFrameHandleIndexMask;
    assert(idx < capacity_ && "at: handle index out of range");
    assert(((h >> kFrameHandleIndexBits) & 0xFFu) ==
               slots_[idx].generation.load(std::memory_order_relaxed) &&
           "at: stale handle");
    return slots_[idx].meta;
  }
  const FrameMeta& at(FrameHandle h) const {
    return const_cast<FramePool*>(this)->at(h);
  }

  /// Hints the referenced slot into cache ahead of use — issued over a whole
  /// popped batch before the serve loop touches any meta.
  void prefetch(FrameHandle h) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[h & kFrameHandleIndexMask].meta, 0, 3);
#else
    (void)h;
#endif
  }

  std::size_t capacity() const { return capacity_; }
  /// Conservation invariant: acquired == released + in_flight, always.
  std::uint64_t in_flight() const {
    return acquired_.load(std::memory_order_relaxed) -
           released_.load(std::memory_order_relaxed);
  }
  std::uint64_t acquired_total() const {
    return acquired_.load(std::memory_order_relaxed);
  }
  std::uint64_t released_total() const {
    return released_.load(std::memory_order_relaxed);
  }
  std::uint64_t exhausted_total() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  queue::SegmentId segment() const { return segment_; }

 private:
  /// Single-writer increment: each of the three counters is written by
  /// exactly one endpoint (acquired_/exhausted_ by the acquirer, released_
  /// by the releaser), so load+store is race-free and avoids paying a
  /// lock-prefixed fetch_add per frame; atomics only so the OTHER endpoint
  /// (and gauges) can read a torn-free value.
  static void bump(std::atomic<std::uint64_t>& counter) {
    counter.store(counter.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }

  queue::ShmArena& arena_;
  queue::SegmentId segment_ = queue::kInvalidSegment;
  Slot* slots_ = nullptr;  // placement-new'd inside the shm segment
  std::size_t capacity_ = 0;
  queue::SpscRing<std::uint32_t> free_list_;
  std::atomic<std::uint64_t> acquired_{0};
  std::atomic<std::uint64_t> released_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

/// One element of an LVRM IPC queue: either an inline FrameMeta (classic
/// mode, control frames) or a pooled FrameHandle (descriptor mode). Moving a
/// handle-holding cell moves 4 bytes instead of the ~128-byte payload — the
/// zero-copy win — while every queue keeps a single element type so the two
/// modes share one code path. Default-constructs to an inline empty frame
/// (PollServer requires default-constructible elements).
class FrameCell {
 public:
  FrameCell() = default;
  explicit FrameCell(FrameMeta&& meta) : repr_(std::move(meta)) {}
  explicit FrameCell(FrameHandle handle) : repr_(handle) {}

  bool pooled() const { return std::holds_alternative<FrameHandle>(repr_); }
  FrameHandle handle() const { return std::get<FrameHandle>(repr_); }

  /// The frame this cell names; `pool` may be null iff the cell is inline.
  FrameMeta& meta(FramePool* pool) {
    if (auto* h = std::get_if<FrameHandle>(&repr_)) return pool->at(*h);
    return std::get<FrameMeta>(repr_);
  }
  const FrameMeta& meta(const FramePool* pool) const {
    if (const auto* h = std::get_if<FrameHandle>(&repr_)) return pool->at(*h);
    return std::get<FrameMeta>(repr_);
  }

  /// Consumes the cell, returning the frame by value and releasing the slot
  /// if pooled (the "free once at TX completion" half of the lifecycle).
  FrameMeta take(FramePool* pool) && {
    if (auto* h = std::get_if<FrameHandle>(&repr_)) {
      FrameMeta out = pool->at(*h);
      pool->release(*h);
      repr_ = FrameMeta{};
      return out;
    }
    FrameMeta out = std::move(std::get<FrameMeta>(repr_));
    repr_ = FrameMeta{};
    return out;
  }

  /// Consumes the cell without needing the frame (the "free once at drop"
  /// half): releases the slot if pooled, otherwise just discards.
  void drop(FramePool* pool) && {
    if (auto* h = std::get_if<FrameHandle>(&repr_)) pool->release(*h);
    repr_ = FrameMeta{};
  }

 private:
  std::variant<FrameMeta, FrameHandle> repr_;
};

}  // namespace lvrm::net
