// trace.hpp — frame traces for the main-memory socket adapter (Exp 1c/1d).
//
// The thesis loads "a trace of 100M minimum-sized frames into main memory"
// so LVRM's internal overhead can be measured without the network. We provide
// (a) a metadata trace generator that the simulator's memory adapter replays,
// and (b) a simple length-prefixed binary format for traces of real frame
// buffers, used by the Click examples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/frame.hpp"
#include "net/ip.hpp"

namespace lvrm::net {

struct TraceSpec {
  std::uint64_t frames = 1'000'000;
  int wire_bytes = 84;
  /// Source subnets to draw src addresses from (one per VR, round-robin);
  /// defaults to a single 10.1.0.0/16 if empty.
  std::vector<Prefix> src_subnets;
  Ipv4Addr dst_base = ipv4(10, 2, 0, 1);
  int flows = 64;  // distinct 5-tuples to cycle through
  std::uint64_t seed = 42;
};

/// Generates a deterministic metadata trace.
std::vector<FrameMeta> generate_trace(const TraceSpec& spec);

/// Length-prefixed binary serialization of raw frame buffers:
///   magic "LVRMTRC1", u64 count, then per frame: u32 length + bytes.
void write_trace(std::ostream& os,
                 const std::vector<std::vector<std::uint8_t>>& frames);
std::vector<std::vector<std::uint8_t>> read_trace(std::istream& is);

/// Classic libpcap format (LINKTYPE_ETHERNET, microsecond timestamps), so
/// traces open in tcpdump/wireshark. Frame i is stamped `base + i*gap`.
void write_pcap(std::ostream& os,
                const std::vector<std::vector<std::uint8_t>>& frames,
                Nanos base = 0, Nanos gap = usec(10));

struct PcapRecord {
  Nanos timestamp = 0;
  std::vector<std::uint8_t> frame;
};

/// Reads back a pcap file written by write_pcap (or any little-endian
/// microsecond-resolution Ethernet pcap). Throws std::runtime_error on a
/// malformed file.
std::vector<PcapRecord> read_pcap(std::istream& is);

}  // namespace lvrm::net
