// frame.hpp — FrameMeta: the unit that flows through the simulated data path.
//
// Real deployments move byte buffers; the simulator moves this POD, which
// carries exactly what LVRM's data path inspects: the source IP (step 2 of
// the Sec 2.1 workflow decides the owning VR from it), the 5-tuple (flow-based
// balancing), the wire size (costs and link occupancy), and timestamps for
// latency accounting. The byte-level codecs in headers.hpp are validated
// against this fast path in tests (encode -> decode -> same FrameMeta).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "net/ip.hpp"

namespace lvrm::net {

enum class FrameKind : std::uint8_t {
  kUdp = 0,
  kTcpData,
  kTcpAck,
  kIcmpRequest,
  kIcmpReply,
  kControl,     // inter-VRI control event (travels on control queues)
  kStateDelta,  // per-flow state record replicated to sibling VRIs (§16)
};

// TCP header flag bits carried in FrameMeta::tcp_flags (the subset the
// stateful firewall's connection tracker inspects).
inline constexpr std::uint8_t kTcpFlagFin = 0x01;
inline constexpr std::uint8_t kTcpFlagSyn = 0x02;
inline constexpr std::uint8_t kTcpFlagRst = 0x04;
inline constexpr std::uint8_t kTcpFlagPsh = 0x08;
inline constexpr std::uint8_t kTcpFlagAck = 0x10;

struct FrameMeta {
  std::uint64_t id = 0;        // globally unique sequence number
  FrameKind kind = FrameKind::kUdp;
  int wire_bytes = 84;         // size on the wire incl. preamble/IFG
  std::uint8_t protocol = 17;  // IP protocol number
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  Nanos created_at = 0;  // when the sender generated it
  Nanos gw_in_at = 0;    // arrival at the gateway input interface
  Nanos gw_out_at = 0;   // departure from the gateway output interface

  std::int32_t flow_index = -1;  // TCP experiments: index into the flow array
  std::uint64_t tcp_seq = 0;     // model-level sequence/ack number
  std::uint8_t tcp_flags = 0;    // kTcpFlag* bits (connection tracking)
  std::int32_t input_if = 0;     // gateway interface it arrived on
  std::int32_t output_if = 1;    // interface a VR selected for forwarding

  // State-compute replication (DESIGN.md §16): once the balancer decides to
  // spray a hot flow across VRIs, every subsequent frame of that flow is
  // stamped with the spray entry's id and a per-flow dispatch sequence
  // number. The TX-side sequencer releases stamped frames in spray_seq
  // order so the external output order is exactly the dispatch order. The
  // id (not the 5-tuple) keys the sequencer because a stateful VR may
  // rewrite the tuple in flight (NAT). All three stay 0 with replication
  // off.
  std::uint8_t sprayed = 0;
  std::uint32_t spray_flow = 0;
  std::uint32_t spray_seq = 0;

  // Filled in by LVRM's dispatch step (step 2 of the Sec 2.1 workflow).
  std::int16_t dispatch_vr = -1;   // owning VR decided from the source IP
  std::int16_t dispatch_vri = -1;  // VRI chosen by the load balancer
  // Dispatcher shard the RSS-style flow hash steered this frame to at
  // ingress (DESIGN.md §11). Always 0 with dispatch_shards=1; every frame
  // of a 5-tuple maps to the same shard, which is what preserves per-flow
  // ordering across a sharded dispatch plane.
  std::int16_t dispatch_shard = -1;

  // Telemetry latency sampling (DESIGN.md §10): a deterministic 1-in-N
  // subset of frames is marked at RX; the marked frames carry three extra
  // stamps so TX can histogram dispatch-queue wait, VRI service time, and
  // end-to-end latency. Host-side observation only — never read by any
  // decision logic, so behaviour is identical with sampling off.
  std::uint8_t obs_sampled = 0;  // 1 when this frame is a latency sample
  // With tracing (DESIGN.md §15) the sampled-frame stamps extend to the
  // full hop timeline: gw_in_at -> obs_rx_at -> obs_enq_at -> obs_svc_at
  // -> obs_done_at -> gw_out_at, exported as one PathSpan per frame.
  Nanos obs_rx_at = 0;           // shard's poll loop began serving it
  Nanos obs_enq_at = 0;          // pushed onto the VRI data_in queue
  Nanos obs_svc_at = 0;          // VRI began servicing it
  Nanos obs_done_at = 0;         // VRI finished servicing it

  // Degradation ladder (DESIGN.md §13): the per-flow sampling rate the RX
  // admission gate applied when it let this frame in (1.0 when the gate was
  // idle). The offered-load estimator needs the rate that actually gated
  // the frame, not the rate at observation time — the ladder may have moved
  // while the frame sat in a ring.
  double admit_rate = 1.0;
};

}  // namespace lvrm::net
