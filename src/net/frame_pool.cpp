#include "net/frame_pool.hpp"

#include <memory>
#include <new>

namespace lvrm::net {

FramePool::FramePool(queue::ShmArena& arena, std::size_t capacity)
    : arena_(arena),
      capacity_(capacity),
      free_list_(capacity == 0 ? 1 : capacity) {
  assert(capacity > 0 && "frame pool needs at least one slot");
  assert(capacity <= kFrameHandleIndexMask &&
         "frame pool capacity exceeds the 24-bit handle index space");
  // ShmArena segments are plain byte vectors with no alignment promise, so
  // over-allocate one cache line and align the slot array inside the segment.
  const std::size_t bytes = capacity * sizeof(Slot) + queue::kCacheLine;
  segment_ = arena_.create(bytes);
  const auto region = arena_.attach(segment_);
  void* base = region.data();
  std::size_t space = region.size();
  base = std::align(alignof(Slot), capacity * sizeof(Slot), base, space);
  assert(base != nullptr && "segment too small after alignment");
  slots_ = static_cast<Slot*>(base);
  for (std::size_t i = 0; i < capacity; ++i) new (&slots_[i]) Slot{};
  for (std::uint32_t i = 0; i < capacity; ++i) {
    const bool ok = free_list_.try_push(i);
    assert(ok && "free list rounds up to >= capacity");
    (void)ok;
  }
}

FramePool::~FramePool() {
  // Slots are trivially destructible (POD meta + atomic byte); just hand the
  // segment back, mirroring shmctl(IPC_RMID) at LVRM teardown.
  arena_.destroy(segment_);
}

}  // namespace lvrm::net
