#include "net/headers.hpp"

#include <algorithm>
#include <cstring>

#include "net/checksum.hpp"

namespace lvrm::net {

namespace {

void put16(std::span<std::uint8_t> out, std::size_t off, std::uint16_t v) {
  out[off] = static_cast<std::uint8_t>(v >> 8);
  out[off + 1] = static_cast<std::uint8_t>(v);
}

void put32(std::span<std::uint8_t> out, std::size_t off, std::uint32_t v) {
  out[off] = static_cast<std::uint8_t>(v >> 24);
  out[off + 1] = static_cast<std::uint8_t>(v >> 16);
  out[off + 2] = static_cast<std::uint8_t>(v >> 8);
  out[off + 3] = static_cast<std::uint8_t>(v);
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t off) {
  return static_cast<std::uint16_t>(in[off] << 8 | in[off + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t off) {
  return static_cast<std::uint32_t>(in[off]) << 24 |
         static_cast<std::uint32_t>(in[off + 1]) << 16 |
         static_cast<std::uint32_t>(in[off + 2]) << 8 | in[off + 3];
}

}  // namespace

// --- Ethernet ---------------------------------------------------------------

void EthernetHeader::encode(std::span<std::uint8_t> out) const {
  std::copy(dst.bytes.begin(), dst.bytes.end(), out.begin());
  std::copy(src.bytes.begin(), src.bytes.end(), out.begin() + 6);
  put16(out, 12, ether_type);
}

std::optional<EthernetHeader> EthernetHeader::decode(
    std::span<const std::uint8_t> in) {
  if (in.size() < kEthernetHeaderLen) return std::nullopt;
  EthernetHeader h;
  std::copy(in.begin(), in.begin() + 6, h.dst.bytes.begin());
  std::copy(in.begin() + 6, in.begin() + 12, h.src.bytes.begin());
  h.ether_type = get16(in, 12);
  return h;
}

// --- IPv4 --------------------------------------------------------------------

void Ipv4Header::encode(std::span<std::uint8_t> out) const {
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = dscp;
  put16(out, 2, total_length);
  put16(out, 4, identification);
  put16(out, 6, 0);  // flags/fragment: DF not modelled
  out[8] = ttl;
  out[9] = protocol;
  put16(out, 10, 0);  // checksum placeholder
  put32(out, 12, src);
  put32(out, 16, dst);
  const std::uint16_t csum =
      internet_checksum(out.subspan(0, kIpv4HeaderLen));
  put16(out, 10, csum);
}

std::optional<Ipv4Header> Ipv4Header::decode(
    std::span<const std::uint8_t> in) {
  if (in.size() < kIpv4HeaderLen) return std::nullopt;
  if ((in[0] >> 4) != 4) return std::nullopt;
  if ((in[0] & 0x0F) < 5) return std::nullopt;
  Ipv4Header h;
  h.dscp = in[1];
  h.total_length = get16(in, 2);
  h.identification = get16(in, 4);
  h.ttl = in[8];
  h.protocol = in[9];
  h.checksum = get16(in, 10);
  h.src = get32(in, 12);
  h.dst = get32(in, 16);
  return h;
}

bool Ipv4Header::verify_checksum(std::span<const std::uint8_t> in) {
  if (in.size() < kIpv4HeaderLen) return false;
  const std::size_t ihl = static_cast<std::size_t>(in[0] & 0x0F) * 4;
  if (ihl < kIpv4HeaderLen || in.size() < ihl) return false;
  // A buffer containing a correct checksum sums (complemented) to 0.
  return internet_checksum(in.subspan(0, ihl)) == 0;
}

// --- UDP ---------------------------------------------------------------------

void UdpHeader::encode(std::span<std::uint8_t> out) const {
  put16(out, 0, src_port);
  put16(out, 2, dst_port);
  put16(out, 4, length);
  put16(out, 6, 0);  // checksum optional in IPv4; left zero
}

std::optional<UdpHeader> UdpHeader::decode(std::span<const std::uint8_t> in) {
  if (in.size() < kUdpHeaderLen) return std::nullopt;
  UdpHeader h;
  h.src_port = get16(in, 0);
  h.dst_port = get16(in, 2);
  h.length = get16(in, 4);
  return h;
}

// --- TCP ---------------------------------------------------------------------

void TcpHeader::encode(std::span<std::uint8_t> out) const {
  put16(out, 0, src_port);
  put16(out, 2, dst_port);
  put32(out, 4, seq);
  put32(out, 8, ack);
  out[12] = 5 << 4;  // data offset: 5 words
  std::uint8_t flags = 0;
  if (fin) flags |= 0x01;
  if (syn) flags |= 0x02;
  if (rst) flags |= 0x04;
  if (psh) flags |= 0x08;
  if (ack_flag) flags |= 0x10;
  out[13] = flags;
  put16(out, 14, window);
  put16(out, 16, 0);  // checksum omitted (would need pseudo-header)
  put16(out, 18, 0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::decode(std::span<const std::uint8_t> in) {
  if (in.size() < kTcpHeaderLen) return std::nullopt;
  TcpHeader h;
  h.src_port = get16(in, 0);
  h.dst_port = get16(in, 2);
  h.seq = get32(in, 4);
  h.ack = get32(in, 8);
  const std::uint8_t flags = in[13];
  h.fin = flags & 0x01;
  h.syn = flags & 0x02;
  h.rst = flags & 0x04;
  h.psh = flags & 0x08;
  h.ack_flag = flags & 0x10;
  h.window = get16(in, 14);
  return h;
}

// --- ICMP echo ----------------------------------------------------------------

void IcmpEcho::encode(std::span<std::uint8_t> out) const {
  out[0] = is_reply ? 0 : 8;  // type
  out[1] = 0;                 // code
  put16(out, 2, 0);           // checksum placeholder
  put16(out, 4, identifier);
  put16(out, 6, sequence);
  const std::uint16_t csum =
      internet_checksum(out.subspan(0, kIcmpEchoHeaderLen));
  put16(out, 2, csum);
}

std::optional<IcmpEcho> IcmpEcho::decode(std::span<const std::uint8_t> in) {
  if (in.size() < kIcmpEchoHeaderLen) return std::nullopt;
  if (in[0] != 0 && in[0] != 8) return std::nullopt;
  IcmpEcho e;
  e.is_reply = in[0] == 0;
  e.identifier = get16(in, 4);
  e.sequence = get16(in, 6);
  return e;
}

// --- Frame builder -------------------------------------------------------------

std::vector<std::uint8_t> build_udp_frame(const MacAddr& src_mac,
                                          const MacAddr& dst_mac,
                                          Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                          std::uint16_t src_port,
                                          std::uint16_t dst_port,
                                          std::size_t payload_len) {
  const std::size_t total =
      kEthernetHeaderLen + kIpv4HeaderLen + kUdpHeaderLen + payload_len;
  std::vector<std::uint8_t> buf(total, 0);
  std::span<std::uint8_t> out(buf);

  EthernetHeader eth{dst_mac, src_mac, kEtherTypeIpv4};
  eth.encode(out);

  Ipv4Header ip;
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderLen + kUdpHeaderLen + payload_len);
  ip.protocol = kProtoUdp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.encode(out.subspan(kEthernetHeaderLen));

  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderLen + payload_len);
  udp.encode(out.subspan(kEthernetHeaderLen + kIpv4HeaderLen));
  return buf;
}

}  // namespace lvrm::net
