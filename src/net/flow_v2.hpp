// flow_v2.hpp — million-flow connection-tracking table (DESIGN.md §14).
//
// FlowTable (flow.hpp) is the paper-scale reference: open addressing with
// linear probing, tombstones, and a stop-the-world rehash. All three choices
// collapse at internet scale — probe chains grow unboundedly under churn, a
// 16M-entry rehash is a multi-millisecond pause in the frame hot path, and
// `evict_vri` scans the whole table inside the latency-critical §13 drain.
//
// FlowTableV2 replaces the layout wholesale:
//
//   * Cache-line-bucketed storage: 8 slots per bucket with a 1-byte tag per
//     slot. A lookup loads the bucket's 8 tags as one word and matches the
//     key's tag with SWAR bit tricks — full-key compares happen only on tag
//     hits (~1/256 false-positive rate per occupied slot), so a miss costs
//     one or two 8-byte loads instead of a pointer-chasing probe chain.
//   * Two-choice bucketed cuckoo placement: every key has exactly two home
//     buckets derived from its hash; inserts displace residents along a
//     bounded random walk (deterministic LCG — results must replay exactly
//     per seed) into their alternate buckets instead of growing chains. The
//     rare walk that exhausts its kick budget lands in a small overflow
//     stash scanned linearly. No tombstones exist: deletion clears the tag.
//   * Incremental resize: growth allocates the doubled table and migrates a
//     bounded number of buckets per subsequent insert/lookup, so no single
//     frame ever pays the full rehash. Lookups consult both generations
//     while a migration is draining; migration doubles as an expiry purge.
//   * Idle-expiry GC wheel: entries are linked into a 64-slot time wheel by
//     expiry deadline. The hot path only refreshes `last_seen` (lazy — the
//     entry stays put); `gc_tick` pops the wheel slots whose window passed
//     and expires or relinks what it finds, making expiry O(expired) batch
//     work per dispatch tick instead of a side effect of exact-key probes.
//   * Per-VRI index: live entries are also threaded onto a doubly-linked
//     list per VRI, turning `evict_vri` into an O(flows-on-that-VRI) walk.
//
// Observable semantics match FlowTable exactly (same strict-> expiry, same
// hit/miss accounting, same insert-over-existing update-in-place), which is
// what lets LvrmConfig::flow_table_v2 guarantee byte-identical experiment
// outputs off-vs-on while changing the host-side cost class underneath.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "net/flow.hpp"

namespace lvrm::net {

class FlowTableV2 {
 public:
  static constexpr std::size_t kSlotsPerBucket = 8;
  static constexpr int kWheelSlots = 64;
  static constexpr int kMaxKicks = 128;
  /// Max entries one gc_tick touches (~tens of µs of list surgery): the
  /// expiry analogue of the bounded migrate_step. Far above any sustainable
  /// per-tick expiry arrival rate, so the overflow chain only absorbs
  /// cohort spikes (e.g. flood state aging out en masse), never grows
  /// unboundedly.
  static constexpr std::size_t kGcBudgetPerTick = 256;

  /// `capacity_hint` is entries; buckets are sized so the hint fits below
  /// the 7/8 load-factor growth trigger. `idle_timeout` 0 disables expiry
  /// (and the wheel entirely).
  explicit FlowTableV2(std::size_t capacity_hint = 4096,
                       Nanos idle_timeout = sec(30));
  ~FlowTableV2();
  FlowTableV2(const FlowTableV2&) = delete;
  FlowTableV2& operator=(const FlowTableV2&) = delete;

  /// Looks up the flow, refreshing its timestamp on hit. An entry found
  /// expired is removed and counted as a miss (same as FlowTable). Drives
  /// one bucket of incremental migration when a resize is draining.
  std::optional<int> lookup(const FiveTuple& t, Nanos now);

  /// Inserts or updates the flow's VRI assignment. Never fails under the
  /// two-choice + stash scheme short of allocation failure; the bool return
  /// mirrors FlowTable's contract. Drives the load-factor growth trigger
  /// and two buckets of incremental migration per call.
  bool insert(const FiveTuple& t, int vri, Nanos now);

  /// Removes all entries assigned to `vri` by walking its intrusive list:
  /// O(flows on that VRI), not O(table). Returns the number evicted.
  std::size_t evict_vri(int vri);

  /// Background expiry: processes wheel slots whose time window has passed
  /// since the last tick, removing entries idle past the timeout and
  /// relinking refreshed ones. Work per call is capped at kGcBudgetPerTick
  /// entries — a mass-expiry cohort (SYN-flood state aging out all at once)
  /// is reclaimed across several ticks instead of one unbounded burst; the
  /// unprocessed remainder parks on an overflow chain drained first by the
  /// next tick. Lookups still enforce exact expiry, so delayed reclamation
  /// is invisible to semantics. A no-op until the wheel cursor is actually
  /// behind `now`. Returns entries expired this call.
  std::size_t gc_tick(Nanos now);

  /// Observer for resize lifecycle events (start + completion, never per
  /// migration step — see FlowResizeEvent).
  void set_resize_hook(FlowResizeHook hook) { on_resize_ = std::move(hook); }

  // -- observability ------------------------------------------------------
  std::size_t size() const {
    return cores_[0].live + cores_[1].live + stash_.size();
  }
  /// Slot capacity of the active generation (what occupancy is measured
  /// against; the draining generation is transient).
  std::size_t capacity() const {
    return cores_[active_].n_buckets * kSlotsPerBucket;
  }
  /// Fraction of active-generation slots holding live entries, 0..1+.
  double occupancy() const {
    const std::size_t cap = capacity();
    return cap == 0 ? 0.0
                    : static_cast<double>(size()) / static_cast<double>(cap);
  }
  bool resizing() const { return resizing_; }
  std::size_t stash_size() const { return stash_.size(); }
  std::size_t stash_peak() const { return stash_peak_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t insert_failures() const { return 0; }
  std::uint64_t expired_total() const { return expired_total_; }
  std::uint64_t resizes_started() const { return resizes_started_; }
  std::uint64_t resizes_completed() const { return resizes_completed_; }
  /// Buckets (plus stash, if consulted) touched by the most recent lookup —
  /// the value the probe-length histogram records.
  unsigned last_probe_len() const { return last_probe_len_; }
  int max_kicks_seen() const { return max_kicks_seen_; }
  /// Bytes of drained-generation arenas still awaiting incremental unmap
  /// (returns to 0 within ~len/256KB operations of a resize completing).
  std::size_t retired_bytes() const {
    std::size_t total = 0;
    for (const auto& r : retired_) total += r.len;
    return total;
  }

 private:
  /// A slot reference: bit 31 selects the core (generation), low 31 bits the
  /// global slot position (bucket * 8 + lane). kNullRef terminates lists.
  using Ref = std::uint32_t;
  static constexpr Ref kNullRef = 0xFFFFFFFFu;

  /// One table generation, structure-of-arrays carved out of a single
  /// anonymous mmap arena. mmap's lazy zero pages make allocation O(1) (no
  /// memset pause on a multi-hundred-MB generation — tag == 0 gates all
  /// reads of the deliberately-untouched arrays), and a retired arena can be
  /// given back in bounded munmap chunks instead of one stop-the-world
  /// release (see reclaim_step). Keys live packed (PackedTuple) so
  /// displacement/migration re-hashes without a FiveTuple round trip.
  struct Core {
    std::size_t n_buckets = 0;  // power of two; 0 = generation not allocated
    std::size_t mask = 0;
    std::size_t live = 0;
    void* arena = nullptr;             // one mapping holding all arrays
    std::size_t arena_len = 0;         // page-rounded mapping length
    std::uint8_t* tags = nullptr;      // n_buckets * 8, zero = empty
    std::uint64_t* ka = nullptr;       // packed key halves
    std::uint64_t* kb = nullptr;
    std::int32_t* vri = nullptr;
    std::int64_t* last_seen = nullptr;
    std::uint32_t* gc_prev = nullptr;
    std::uint32_t* gc_next = nullptr;
    std::uint32_t* vri_prev = nullptr;
    std::uint32_t* vri_next = nullptr;
    std::uint8_t* wheel = nullptr;     // wheel slot the entry is linked into
  };

  /// A drained generation's arena awaiting incremental unmap.
  struct Retired {
    void* base = nullptr;
    std::size_t len = 0;
  };
  /// Bytes unmapped per reclaim step: big enough to drain a retired
  /// generation long before the next resize, small enough that one step
  /// stays in single-digit microseconds of kernel time.
  static constexpr std::size_t kReclaimChunk = 256 * 1024;

  /// An entry travelling between slots (cuckoo hand, stash overflow). Not
  /// linked into any list while in this form.
  struct Loose {
    std::uint64_t ka = 0, kb = 0;
    std::uint64_t h = 0;
    std::int64_t last_seen = 0;
    std::int32_t vri = -1;
  };

  void alloc_core(Core& c, std::size_t n_buckets);
  /// Queues the generation's arena for incremental unmap and resets it.
  void release_core(Core& c);
  /// Unmaps at most kReclaimChunk bytes of retired arenas. Called once per
  /// lookup/insert so deallocating a drained multi-hundred-MB generation
  /// never lands on a single operation — the same bounded-work discipline
  /// migrate_step applies to the data movement.
  void reclaim_step();

  static std::size_t alt_bucket(const Core& c, std::size_t bucket,
                                std::uint64_t h) {
    // The xor-delta is odd, so with mask >= 1 the alternate differs from
    // `bucket` and the mapping is an involution (recoverable from the key).
    return bucket ^ (static_cast<std::size_t>((h >> 32) | 1) & c.mask);
  }

  /// Finds the ref of (ka,kb) in core `ci`, or kNullRef. Adds the number of
  /// buckets scanned to last_probe_len_.
  Ref find_in_core(int ci, std::uint64_t ka, std::uint64_t kb,
                   std::uint64_t h);
  int find_in_stash(std::uint64_t ka, std::uint64_t kb) const;

  /// Places a loose entry into core `ci` (empty lane, else bounded cuckoo
  /// walk, else stash). Always succeeds; wheel/VRI lists are linked for the
  /// final resting slot.
  void place(int ci, Loose e);
  /// Writes a loose entry into an empty lane and links its lists.
  void emplace_at(int ci, std::size_t pos, const Loose& e);
  /// Unlinks an entry's lists and clears its tag, returning it loose.
  Loose extract(Ref ref);
  /// Removes an entry outright (extract + drop).
  void erase(Ref ref);

  void link_lists(Ref ref);
  void unlink_lists(Ref ref);
  void link_gc(Ref ref, int wheel_slot);
  void unlink_gc(Ref ref);
  void link_vri(Ref ref, int vri);
  void unlink_vri(Ref ref);

  Core& core_of(Ref ref) { return cores_[ref >> 31]; }
  static std::size_t pos_of(Ref ref) { return ref & 0x7FFFFFFFu; }
  static Ref make_ref(int ci, std::size_t pos) {
    return static_cast<Ref>((static_cast<std::uint32_t>(ci) << 31) |
                            static_cast<std::uint32_t>(pos));
  }

  int wheel_slot_for(Nanos deadline) const {
    return static_cast<int>((deadline / gran_) % kWheelSlots);
  }
  bool expired(Nanos last_seen, Nanos now) const {
    return idle_timeout_ > 0 && now - last_seen > idle_timeout_;
  }

  /// Expiry-checks up to `budget` entries of a popped chain; survivors
  /// relink, the unprocessed remainder re-parks on the overflow chain
  /// (wheel_heads_[kWheelSlots]). Returns entries expired.
  std::size_t gc_process_chain(Ref r, std::size_t& budget, Nanos now);

  void maybe_start_resize(Nanos now);
  /// Migrates up to `max_buckets` buckets of the draining generation into
  /// the active one, purging expired entries en route.
  void migrate_step(std::size_t max_buckets, Nanos now);

  std::uint32_t lcg_next() {
    lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(lcg_ >> 33);
  }

  Core cores_[2];
  int active_ = 0;
  bool resizing_ = false;
  std::size_t migrate_cursor_ = 0;   // next old-generation bucket to drain
  std::size_t migrated_entries_ = 0;

  std::vector<Loose> stash_;
  std::size_t stash_peak_ = 0;
  std::vector<Retired> retired_;

  Nanos idle_timeout_;
  Nanos gran_ = 1;          // wheel slot width: idle_timeout / (kWheelSlots/2)
  Nanos wheel_time_ = 0;    // next wheel boundary gc_tick will process
  // Slot kWheelSlots is the overflow chain: remainder of a chain whose
  // processing exhausted a tick's budget, drained first by the next tick.
  Ref wheel_heads_[kWheelSlots + 1];

  std::vector<Ref> vri_heads_;

  std::uint64_t lcg_ = 0x9E3779B97F4A7C15ULL;  // deterministic kick source
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t expired_total_ = 0;
  std::uint64_t resizes_started_ = 0;
  std::uint64_t resizes_completed_ = 0;
  unsigned last_probe_len_ = 0;
  int max_kicks_seen_ = 0;
  FlowResizeHook on_resize_;
};

}  // namespace lvrm::net
