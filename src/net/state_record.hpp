// state_record.hpp — compact per-flow state records for stateful VRs.
//
// A stateful virtual router (src/vr) keeps per-flow state keyed by the
// 5-tuple: a NAT translation entry, a connection-tracker state, a token
// bucket. Under state-compute replication (DESIGN.md §16) every state
// *change* is exported as one of these fixed-size records and shipped over
// the control rings to sibling VRIs, so any VRI can process any frame of a
// sprayed flow. The record is deliberately VR-agnostic: two 64-bit payload
// words whose meaning is owned by the emitting VR kind (see the per-kind
// comments and docs/VR_AUTHORING.md). Keeping it POD-sized means the
// simulated control frame can charge a realistic serialization cost and a
// real implementation could memcpy it onto a ring verbatim.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.hpp"
#include "net/flow.hpp"

namespace lvrm::net {

// Which VR family emitted the record. Used by apply_delta() to reject
// records from a mismatched router (e.g. after a reconfig race).
enum class StateKind : std::uint8_t {
  kNone = 0,
  kNatMapping,   // a = external port, b = original (src_ip << 16) | src_port
  kConnTrack,    // a = new TCP connection state, b = flags that caused it
  kTokenBucket,  // a = tokens in millitokens (×1000), b = refill stamp (ns)
};

struct StateDelta {
  FiveTuple flow{};                    // the flow the record belongs to
  StateKind kind = StateKind::kNone;   // emitting VR family
  std::uint64_t a = 0;                 // payload word 1 (kind-specific)
  std::uint64_t b = 0;                 // payload word 2 (kind-specific)
  Nanos stamp = 0;                     // emission time; receivers drop stale
                                       // records for state they overwrote later

  // Serialized size charged to the control path: 13-byte packed tuple +
  // kind byte + two payload words + stamp, rounded to the ring's 8-byte
  // granularity. (The in-memory struct is larger; the wire format is what
  // a real ring would carry.)
  static constexpr std::size_t kWireBytes = 48;
};

}  // namespace lvrm::net
