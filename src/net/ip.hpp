// ip.hpp — IPv4 address helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace lvrm::net {

/// IPv4 address in host byte order (so prefix arithmetic is plain math).
using Ipv4Addr = std::uint32_t;

/// Builds an address from dotted-quad components: ipv4(192,168,1,1).
constexpr Ipv4Addr ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

/// Network mask for a prefix length 0..32.
constexpr Ipv4Addr prefix_mask(int len) {
  if (len <= 0) return 0;
  if (len >= 32) return 0xFFFF'FFFFu;
  return ~((1u << (32 - len)) - 1u);
}

/// True when `addr` falls inside `net`/`len`.
constexpr bool in_prefix(Ipv4Addr addr, Ipv4Addr net, int len) {
  const Ipv4Addr mask = prefix_mask(len);
  return (addr & mask) == (net & mask);
}

/// "a.b.c.d" rendering.
std::string format_ipv4(Ipv4Addr addr);

/// Parses "a.b.c.d"; nullopt on malformed input.
std::optional<Ipv4Addr> parse_ipv4(const std::string& s);

/// Parses "a.b.c.d/len"; nullopt on malformed input.
struct Prefix {
  Ipv4Addr network;
  int length;
  bool operator==(const Prefix&) const = default;
};
std::optional<Prefix> parse_prefix(const std::string& s);

}  // namespace lvrm::net
