// headers.hpp — wire-format codecs for the protocols the testbed exercises.
//
// LVRM operates on raw layer-2 frames (Sec 2.1 workflow step 1), so the
// repository carries honest big-endian encoders/decoders for Ethernet, IPv4,
// UDP, TCP and ICMP echo. The Click VR elements (CheckIPHeader, DecIPTTL,
// LookupIPRoute) parse these for real; the simulator's fast path uses the
// pre-parsed FrameMeta instead but is validated against these codecs in the
// test suite.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip.hpp"
#include "net/mac.hpp"

namespace lvrm::net {

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;

inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

inline constexpr std::size_t kEthernetHeaderLen = 14;
inline constexpr std::size_t kIpv4HeaderLen = 20;  // no options
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kTcpHeaderLen = 20;  // no options
inline constexpr std::size_t kIcmpEchoHeaderLen = 8;

/// Ethernet frame overhead that exists on the wire but not in the buffer:
/// preamble(7) + SFD(1) + FCS(4) + inter-frame gap(12) = 24 bytes. The thesis
/// counts frame sizes *including* this (84 B minimum), so conversions between
/// buffer length and wire length go through these helpers.
inline constexpr int kWireOverheadBytes = 24;
constexpr int wire_bytes_for_buffer(std::size_t buffer_len) {
  // 60 B is the minimum L2 payload+headers before FCS (64 B frame - FCS).
  const auto padded = buffer_len < 60 ? std::size_t{60} : buffer_len;
  return static_cast<int>(padded) + kWireOverheadBytes;
}

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = kEtherTypeIpv4;

  void encode(std::span<std::uint8_t> out) const;  // needs >= 14 bytes
  static std::optional<EthernetHeader> decode(
      std::span<const std::uint8_t> in);
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtoUdp;
  std::uint16_t checksum = 0;  // filled by encode()
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;

  /// Encodes with a freshly computed header checksum.
  void encode(std::span<std::uint8_t> out) const;  // needs >= 20 bytes
  /// Decodes and verifies version/IHL; does not verify the checksum (use
  /// verify_checksum for that, mirroring Click's CheckIPHeader).
  static std::optional<Ipv4Header> decode(std::span<const std::uint8_t> in);
  static bool verify_checksum(std::span<const std::uint8_t> in);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = kUdpHeaderLen;  // header + payload

  void encode(std::span<std::uint8_t> out) const;  // needs >= 8 bytes
  static std::optional<UdpHeader> decode(std::span<const std::uint8_t> in);
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool syn = false, fin = false, rst = false, ack_flag = false, psh = false;
  std::uint16_t window = 0;

  void encode(std::span<std::uint8_t> out) const;  // needs >= 20 bytes
  static std::optional<TcpHeader> decode(std::span<const std::uint8_t> in);
};

struct IcmpEcho {
  bool is_reply = false;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  void encode(std::span<std::uint8_t> out) const;  // needs >= 8 bytes
  static std::optional<IcmpEcho> decode(std::span<const std::uint8_t> in);
};

/// Builds a complete Ethernet+IPv4+UDP frame with a zero-filled payload of
/// `payload_len` bytes. Convenience for tests, Click examples, and traces.
std::vector<std::uint8_t> build_udp_frame(const MacAddr& src_mac,
                                          const MacAddr& dst_mac,
                                          Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                          std::uint16_t src_port,
                                          std::uint16_t dst_port,
                                          std::size_t payload_len);

}  // namespace lvrm::net
