#include "net/flow.hpp"

#include <bit>

namespace lvrm::net {

std::uint64_t hash_tuple(const FiveTuple& t) {
  // Pack the tuple into two 64-bit words, then avalanche (xxhash finalizer).
  std::uint64_t a = (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip;
  std::uint64_t b = (static_cast<std::uint64_t>(t.src_port) << 32) |
                    (static_cast<std::uint64_t>(t.dst_port) << 16) |
                    t.protocol;
  std::uint64_t h = a * 0x9E3779B185EBCA87ULL;
  h = std::rotl(h, 31) ^ (b * 0xC2B2AE3D27D4EB4FULL);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

FlowTable::FlowTable(std::size_t capacity_hint, Nanos idle_timeout)
    : idle_timeout_(idle_timeout) {
  const std::size_t buckets = round_up_pow2(capacity_hint);
  slots_.assign(buckets, Slot{});
  mask_ = buckets - 1;
}

std::size_t FlowTable::probe(const FiveTuple& t) const {
  std::size_t idx = hash_tuple(t) & mask_;
  std::size_t first_free = slots_.size();  // sentinel: none seen yet
  for (std::size_t step = 0; step < slots_.size(); ++step) {
    const Slot& s = slots_[idx];
    if (s.state == State::kEmpty)
      return first_free != slots_.size() ? first_free : idx;
    if (s.state == State::kTombstone) {
      if (first_free == slots_.size()) first_free = idx;
    } else if (s.tuple == t) {
      return idx;
    }
    idx = (idx + 1) & mask_;
  }
  return first_free != slots_.size() ? first_free : 0;
}

std::optional<int> FlowTable::lookup(const FiveTuple& t, Nanos now) {
  const std::size_t idx = probe(t);
  Slot& s = slots_[idx];
  if (s.state == State::kLive && s.tuple == t) {
    if (expired(s, now)) {
      s.state = State::kTombstone;
      --live_;
      ++tombstones_;
      ++misses_;
      return std::nullopt;
    }
    s.last_seen = now;  // "add flag"/refresh step of Fig 3.3
    ++hits_;
    return s.vri;
  }
  ++misses_;
  return std::nullopt;
}

void FlowTable::insert(const FiveTuple& t, int vri, Nanos now) {
  // Tombstones count toward the rehash trigger: a probe chain does not stop
  // at a tombstone, so a churned table with few live entries can still
  // degrade to O(n) probes if dead slots pile up. Double only when live
  // entries alone pass load factor 0.5; otherwise rebuild at the same size,
  // which just purges the tombstones.
  if ((live_ + tombstones_ + 1) * 10 > slots_.size() * 7) {
    rehash(live_ * 10 > slots_.size() * 5 ? slots_.size() * 2 : slots_.size());
  }
  const std::size_t idx = probe(t);
  Slot& s = slots_[idx];
  const bool was_live = s.state == State::kLive && s.tuple == t;
  if (s.state == State::kTombstone) --tombstones_;  // slot reused
  s.tuple = t;
  s.vri = vri;
  s.last_seen = now;
  s.state = State::kLive;
  if (!was_live) ++live_;
}

std::size_t FlowTable::evict_vri(int vri) {
  std::size_t evicted = 0;
  for (Slot& s : slots_) {
    if (s.state == State::kLive && s.vri == vri) {
      s.state = State::kTombstone;
      --live_;
      ++tombstones_;
      ++evicted;
    }
  }
  return evicted;
}

void FlowTable::rehash(std::size_t buckets) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(buckets, Slot{});
  mask_ = slots_.size() - 1;
  live_ = 0;
  tombstones_ = 0;
  for (const Slot& s : old) {
    if (s.state != State::kLive) continue;
    const std::size_t idx = probe(s.tuple);
    slots_[idx] = s;
    ++live_;
  }
}

}  // namespace lvrm::net
