#include "net/flow.hpp"

#include <bit>
#include <cassert>

#include "common/log.hpp"

namespace lvrm::net {

PackedTuple pack_tuple(const FiveTuple& t) {
  return PackedTuple{
      .a = (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip,
      .b = (static_cast<std::uint64_t>(t.src_port) << 32) |
           (static_cast<std::uint64_t>(t.dst_port) << 16) | t.protocol};
}

std::uint64_t hash_packed(PackedTuple k) {
  // xxhash-style finalizer over the two packed words.
  std::uint64_t h = k.a * 0x9E3779B185EBCA87ULL;
  h = std::rotl(h, 31) ^ (k.b * 0xC2B2AE3D27D4EB4FULL);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

std::uint64_t hash_tuple(const FiveTuple& t) {
  return hash_packed(pack_tuple(t));
}

const char* to_string(FlowResizeCause c) {
  switch (c) {
    case FlowResizeCause::kLoadFactor: return "load_factor";
    case FlowResizeCause::kTombstonePurge: return "tombstone_purge";
    case FlowResizeCause::kIncrementalStep: return "incremental_step";
  }
  return "unknown";
}

namespace {
// Largest power of two representable in size_t; hints above it cannot be
// rounded up and `p <<= 1` would wrap to 0, looping forever.
constexpr std::size_t kMaxPow2 = std::size_t{1}
                                 << (sizeof(std::size_t) * 8 - 1);

std::size_t round_up_pow2(std::size_t n) {
  assert(n <= kMaxPow2 && "capacity hint not representable as a power of two");
  if (n > kMaxPow2) return kMaxPow2;  // NDEBUG: clamp instead of hanging
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

FlowTable::FlowTable(std::size_t capacity_hint, Nanos idle_timeout)
    : idle_timeout_(idle_timeout) {
  // A hint above 2^32 slots (≥256 GiB of Slot alone) is a units bug in the
  // caller, not a real sizing request.
  assert(capacity_hint <= (std::size_t{1} << 32) && "capacity hint too large");
  const std::size_t buckets = round_up_pow2(capacity_hint);
  slots_.assign(buckets, Slot{});
  mask_ = buckets - 1;
}

std::size_t FlowTable::probe(const FiveTuple& t) const {
  std::size_t idx = hash_tuple(t) & mask_;
  std::size_t first_free = slots_.size();  // sentinel: none seen yet
  for (std::size_t step = 0; step < slots_.size(); ++step) {
    const Slot& s = slots_[idx];
    if (s.state == State::kEmpty)
      return first_free != slots_.size() ? first_free : idx;
    if (s.state == State::kTombstone) {
      if (first_free == slots_.size()) first_free = idx;
    } else if (s.tuple == t) {
      return idx;
    }
    idx = (idx + 1) & mask_;
  }
  // Scanned every slot: the key is absent and, unless a tombstone was seen,
  // there is nowhere to put it. Returning any index here would alias a
  // different flow's slot, so a full table reports kNoSlot.
  return first_free != slots_.size() ? first_free : kNoSlot;
}

std::optional<int> FlowTable::lookup(const FiveTuple& t, Nanos now) {
  const std::size_t idx = probe(t);
  if (idx == kNoSlot) {
    ++misses_;
    return std::nullopt;
  }
  Slot& s = slots_[idx];
  if (s.state == State::kLive && s.tuple == t) {
    if (expired(s, now)) {
      s.state = State::kTombstone;
      --live_;
      ++tombstones_;
      ++misses_;
      return std::nullopt;
    }
    s.last_seen = now;  // "add flag"/refresh step of Fig 3.3
    ++hits_;
    return s.vri;
  }
  ++misses_;
  return std::nullopt;
}

bool FlowTable::insert(const FiveTuple& t, int vri, Nanos now) {
  // Tombstones count toward the rehash trigger: a probe chain does not stop
  // at a tombstone, so a churned table with few live entries can still
  // degrade to O(n) probes if dead slots pile up. Double only when live
  // entries alone pass load factor 0.5; otherwise rebuild at the same size,
  // which just purges the tombstones.
  if ((live_ + tombstones_ + 1) * 10 > slots_.size() * 7) {
    const bool grow = live_ * 10 > slots_.size() * 5;
    std::size_t target = grow ? slots_.size() * 2 : slots_.size();
    FlowResizeCause cause =
        grow ? FlowResizeCause::kLoadFactor : FlowResizeCause::kTombstonePurge;
    if (max_buckets_ != 0 && target > max_buckets_) {
      // Growth is capped; a same-size purge still helps when tombstones are
      // what tripped the guard, otherwise the table is simply full and the
      // probe below decides the insert's fate.
      target = tombstones_ > 0 ? slots_.size() : 0;
      cause = FlowResizeCause::kTombstonePurge;
    }
    if (target != 0) rehash(target, cause);
  }
  const std::size_t idx = probe(t);
  if (idx == kNoSlot) {
    ++insert_failures_;
    // Power-of-two backoff so a saturated table doesn't flood the log at
    // frame rate while the first and the steady-state failures stay visible.
    if ((insert_failures_ & (insert_failures_ - 1)) == 0) {
      LVRM_CLOG(kDispatch, kError)
          << "flow table full (" << live_ << "/" << slots_.size()
          << " slots, cap " << max_buckets_ << "): flow not tracked, "
          << insert_failures_ << " failures total";
    }
    return false;
  }
  Slot& s = slots_[idx];
  const bool was_live = s.state == State::kLive && s.tuple == t;
  if (s.state == State::kTombstone) --tombstones_;  // slot reused
  s.tuple = t;
  s.vri = vri;
  s.last_seen = now;
  s.state = State::kLive;
  if (!was_live) ++live_;
  return true;
}

std::size_t FlowTable::evict_vri(int vri) {
  std::size_t evicted = 0;
  for (Slot& s : slots_) {
    if (s.state == State::kLive && s.vri == vri) {
      s.state = State::kTombstone;
      --live_;
      ++tombstones_;
      ++evicted;
    }
  }
  return evicted;
}

void FlowTable::rehash(std::size_t buckets, FlowResizeCause cause) {
  const std::size_t before = slots_.size();
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(buckets, Slot{});
  mask_ = slots_.size() - 1;
  live_ = 0;
  tombstones_ = 0;
  for (const Slot& s : old) {
    if (s.state != State::kLive) continue;
    const std::size_t idx = probe(s.tuple);
    slots_[idx] = s;
    ++live_;
  }
  if (on_resize_) {
    on_resize_(FlowResizeEvent{.cause = cause,
                               .buckets_before = before,
                               .buckets_after = buckets,
                               .migrated = live_});
  }
}

}  // namespace lvrm::net
