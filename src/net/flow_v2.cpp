#include "net/flow_v2.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace lvrm::net {

namespace {

constexpr std::uint64_t kLsb = 0x0101010101010101ULL;
constexpr std::uint64_t k7f = 0x7F7F7F7F7F7F7F7FULL;

std::uint64_t load8(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// High bit of byte i set iff byte i of v is zero. The exact SWAR form —
/// not the cheaper `(v - kLsb) & ~v & 0x80..` — because borrow propagation
/// in that one can flag a 0x01 byte above a genuine zero. A false "empty
/// lane" there would overwrite a live entry whose list links still point at
/// the slot, so exactness is structural here, not a micro-nicety.
std::uint64_t zero_bytes(std::uint64_t v) {
  return ~(((v & k7f) + k7f) | v | k7f);
}

/// High bit of byte i set iff tags[i] == tag (bucket's 8 tags in one word).
std::uint64_t match_tag(const std::uint8_t* tags, std::uint8_t tag) {
  return zero_bytes(load8(tags) ^ (kLsb * tag));
}

std::uint64_t empty_lanes(const std::uint8_t* tags) {
  return zero_bytes(load8(tags));
}

unsigned lane_of(std::uint64_t match_bit_mask) {
  return static_cast<unsigned>(std::countr_zero(match_bit_mask)) >> 3;
}

std::uint8_t tag_of(std::uint64_t h) {
  const auto t = static_cast<std::uint8_t>(h >> 56);
  return t == 0 ? 1 : t;  // 0 means empty; fold it onto 1
}

}  // namespace

FlowTableV2::FlowTableV2(std::size_t capacity_hint, Nanos idle_timeout)
    : idle_timeout_(idle_timeout) {
  assert(capacity_hint <= (std::size_t{1} << 31) && "capacity hint too large");
  // Size so the hint sits below the 7/8 growth trigger: capacity_hint
  // entries must fit in n_buckets * 8 * 7/8 = n_buckets * 7 slots.
  std::size_t buckets = 2;
  while (buckets * 7 < capacity_hint) buckets <<= 1;
  alloc_core(cores_[0], buckets);
  gran_ = idle_timeout_ > 0
              ? std::max<Nanos>(idle_timeout_ / (kWheelSlots / 2), 1)
              : 1;
  std::fill(std::begin(wheel_heads_), std::end(wheel_heads_), kNullRef);
}

FlowTableV2::~FlowTableV2() {
  for (Core& c : cores_) {
    if (c.arena != nullptr) ::munmap(c.arena, c.arena_len);
  }
  for (const Retired& r : retired_) ::munmap(r.base, r.len);
}

void FlowTableV2::alloc_core(Core& c, std::size_t n_buckets) {
  const std::size_t n = n_buckets * kSlotsPerBucket;
  assert(n <= (std::size_t{1} << 31) && "slot index must fit in 31-bit refs");
  c.n_buckets = n_buckets;
  c.mask = n_buckets - 1;
  c.live = 0;
  // One anonymous mapping for the whole generation. mmap's lazy zero pages
  // make this O(1) regardless of size — a 256 MB generation costs page
  // faults spread over use, not an up-front memset that would blow the
  // 10 µs pause bound the incremental resize exists to guarantee. Tags gate
  // every read, and anonymous pages read as zero, so nothing needs
  // initialization. The 8-byte arrays are carved first so every array is
  // naturally aligned.
  const std::size_t bytes =
      n * (3 * sizeof(std::uint64_t) + 5 * sizeof(std::uint32_t) + 2);
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  c.arena_len = (bytes + page - 1) & ~(page - 1);
  void* base = ::mmap(nullptr, c.arena_len, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  assert(base != MAP_FAILED && "flow table arena mmap failed");
  if (base == MAP_FAILED) std::abort();
  c.arena = base;
  auto* p = static_cast<std::uint8_t*>(base);
  c.ka = reinterpret_cast<std::uint64_t*>(p);
  p += n * sizeof(std::uint64_t);
  c.kb = reinterpret_cast<std::uint64_t*>(p);
  p += n * sizeof(std::uint64_t);
  c.last_seen = reinterpret_cast<std::int64_t*>(p);
  p += n * sizeof(std::int64_t);
  c.vri = reinterpret_cast<std::int32_t*>(p);
  p += n * sizeof(std::int32_t);
  c.gc_prev = reinterpret_cast<std::uint32_t*>(p);
  p += n * sizeof(std::uint32_t);
  c.gc_next = reinterpret_cast<std::uint32_t*>(p);
  p += n * sizeof(std::uint32_t);
  c.vri_prev = reinterpret_cast<std::uint32_t*>(p);
  p += n * sizeof(std::uint32_t);
  c.vri_next = reinterpret_cast<std::uint32_t*>(p);
  p += n * sizeof(std::uint32_t);
  c.tags = p;
  p += n;
  c.wheel = p;
}

void FlowTableV2::release_core(Core& c) {
  // Never unmapped here: at 16M entries the drained generation is ~1.5 GB
  // and a single munmap is a multi-ms page-table teardown — measured as the
  // dominant residual pause when it rode the resize-completion insert. The
  // arena is queued instead and given back in kReclaimChunk slices.
  if (c.arena != nullptr) retired_.push_back({c.arena, c.arena_len});
  c = Core{};
}

void FlowTableV2::reclaim_step() {
  if (retired_.empty()) return;
  Retired& r = retired_.back();
  const std::size_t chunk = std::min(kReclaimChunk, r.len);
  ::munmap(r.base, chunk);
  r.base = static_cast<std::uint8_t*>(r.base) + chunk;
  r.len -= chunk;
  if (r.len == 0) retired_.pop_back();
}

// ---------------------------------------------------------------------------
// Intrusive lists. Links are Refs, so a list freely spans both generations
// during a resize; an entry's own fields locate its head (wheel[pos] for the
// GC wheel, vri[pos] for the per-VRI index), which is what makes unlink O(1)
// with head-pointer-only lists.

void FlowTableV2::link_gc(Ref ref, int wheel_slot) {
  if (idle_timeout_ <= 0) return;
  Core& c = core_of(ref);
  const std::size_t pos = pos_of(ref);
  c.wheel[pos] = static_cast<std::uint8_t>(wheel_slot);
  c.gc_prev[pos] = kNullRef;
  const Ref head = wheel_heads_[wheel_slot];
  c.gc_next[pos] = head;
  if (head != kNullRef) core_of(head).gc_prev[pos_of(head)] = ref;
  wheel_heads_[wheel_slot] = ref;
}

void FlowTableV2::unlink_gc(Ref ref) {
  if (idle_timeout_ <= 0) return;
  Core& c = core_of(ref);
  const std::size_t pos = pos_of(ref);
  const Ref p = c.gc_prev[pos];
  const Ref n = c.gc_next[pos];
  if (p == kNullRef) {
    wheel_heads_[c.wheel[pos]] = n;
    // The successor inherits the slot byte. Interior wheel bytes may be
    // stale (the GC overflow chain re-parks a chain remainder by rewriting
    // only its head's byte) — propagating on head removal keeps the one
    // byte that locates a list, the head's, always accurate.
    if (n != kNullRef) core_of(n).wheel[pos_of(n)] = c.wheel[pos];
  } else {
    core_of(p).gc_next[pos_of(p)] = n;
  }
  if (n != kNullRef) core_of(n).gc_prev[pos_of(n)] = p;
}

void FlowTableV2::link_vri(Ref ref, int vri) {
  if (vri < 0) return;
  const auto v = static_cast<std::size_t>(vri);
  if (v >= vri_heads_.size()) vri_heads_.resize(v + 1, kNullRef);
  Core& c = core_of(ref);
  const std::size_t pos = pos_of(ref);
  c.vri_prev[pos] = kNullRef;
  const Ref head = vri_heads_[v];
  c.vri_next[pos] = head;
  if (head != kNullRef) core_of(head).vri_prev[pos_of(head)] = ref;
  vri_heads_[v] = ref;
}

void FlowTableV2::unlink_vri(Ref ref) {
  Core& c = core_of(ref);
  const std::size_t pos = pos_of(ref);
  if (c.vri[pos] < 0) return;
  const Ref p = c.vri_prev[pos];
  const Ref n = c.vri_next[pos];
  if (p == kNullRef) {
    vri_heads_[static_cast<std::size_t>(c.vri[pos])] = n;
  } else {
    core_of(p).vri_next[pos_of(p)] = n;
  }
  if (n != kNullRef) core_of(n).vri_prev[pos_of(n)] = p;
}

void FlowTableV2::link_lists(Ref ref) {
  Core& c = core_of(ref);
  const std::size_t pos = pos_of(ref);
  link_vri(ref, c.vri[pos]);
  link_gc(ref, wheel_slot_for(c.last_seen[pos] + idle_timeout_));
}

void FlowTableV2::unlink_lists(Ref ref) {
  unlink_vri(ref);
  unlink_gc(ref);
}

// ---------------------------------------------------------------------------
// Slot movement primitives.

void FlowTableV2::emplace_at(int ci, std::size_t pos, const Loose& e) {
  Core& c = cores_[ci];
  assert(c.tags[pos] == 0);
  c.tags[pos] = tag_of(e.h);
  c.ka[pos] = e.ka;
  c.kb[pos] = e.kb;
  c.vri[pos] = e.vri;
  c.last_seen[pos] = e.last_seen;
  ++c.live;
  link_lists(make_ref(ci, pos));
}

FlowTableV2::Loose FlowTableV2::extract(Ref ref) {
  Core& c = core_of(ref);
  const std::size_t pos = pos_of(ref);
  assert(c.tags[pos] != 0);
  unlink_lists(ref);
  Loose e{.ka = c.ka[pos],
          .kb = c.kb[pos],
          .h = hash_packed(PackedTuple{c.ka[pos], c.kb[pos]}),
          .last_seen = c.last_seen[pos],
          .vri = c.vri[pos]};
  c.tags[pos] = 0;
  --c.live;
  return e;
}

void FlowTableV2::erase(Ref ref) {
  (void)extract(ref);
}

void FlowTableV2::place(int ci, Loose e) {
  Core& c = cores_[ci];
  const std::size_t b1 = e.h & c.mask;
  const std::size_t b2 = alt_bucket(c, b1, e.h);
  for (const std::size_t b : {b1, b2}) {
    const std::uint64_t m = empty_lanes(c.tags + b * kSlotsPerBucket);
    if (m != 0) {
      emplace_at(ci, b * kSlotsPerBucket + lane_of(m), e);
      return;
    }
  }
  // Both home buckets full: bounded random-walk cuckoo. The hand entry is
  // written over a deterministic-randomly chosen victim, which becomes the
  // new hand and walks to ITS alternate bucket — every displaced entry stays
  // within its own two home buckets, so lookups never need a third probe.
  Loose hand = e;
  std::size_t cur = (lcg_next() & 1) ? b2 : b1;
  for (int kick = 1; kick <= kMaxKicks; ++kick) {
    const std::size_t pos =
        cur * kSlotsPerBucket + (lcg_next() & (kSlotsPerBucket - 1));
    Loose victim = extract(make_ref(ci, pos));
    emplace_at(ci, pos, hand);
    hand = victim;
    cur = alt_bucket(c, cur, hand.h);
    const std::uint64_t m = empty_lanes(c.tags + cur * kSlotsPerBucket);
    if (m != 0) {
      emplace_at(ci, cur * kSlotsPerBucket + lane_of(m), hand);
      max_kicks_seen_ = std::max(max_kicks_seen_, kick);
      return;
    }
  }
  // Walk exhausted (astronomically rare below the growth trigger): the hand
  // overflows into the stash, which lookups scan linearly and whose growth
  // pressure triggers a resize.
  max_kicks_seen_ = kMaxKicks;
  stash_.push_back(hand);
  stash_peak_ = std::max(stash_peak_, stash_.size());
}

// ---------------------------------------------------------------------------
// Probing.

FlowTableV2::Ref FlowTableV2::find_in_core(int ci, std::uint64_t ka,
                                           std::uint64_t kb,
                                           std::uint64_t h) {
  Core& c = cores_[ci];
  if (c.n_buckets == 0) return kNullRef;
  const std::uint8_t tag = tag_of(h);
  const std::size_t b1 = h & c.mask;
  const std::size_t b2 = alt_bucket(c, b1, h);
  for (const std::size_t b : {b1, b2}) {
    ++last_probe_len_;
    std::uint64_t m = match_tag(c.tags + b * kSlotsPerBucket, tag);
    while (m != 0) {
      const std::size_t pos = b * kSlotsPerBucket + lane_of(m);
      if (c.ka[pos] == ka && c.kb[pos] == kb) return make_ref(ci, pos);
      m &= m - 1;  // tag collision: next candidate lane
    }
  }
  return kNullRef;
}

int FlowTableV2::find_in_stash(std::uint64_t ka, std::uint64_t kb) const {
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].ka == ka && stash_[i].kb == kb) return static_cast<int>(i);
  }
  return -1;
}

std::optional<int> FlowTableV2::lookup(const FiveTuple& t, Nanos now) {
  if (resizing_) migrate_step(1, now);
  reclaim_step();
  last_probe_len_ = 0;
  const PackedTuple k = pack_tuple(t);
  const std::uint64_t h = hash_packed(k);
  Ref r = find_in_core(active_, k.a, k.b, h);
  if (r == kNullRef && resizing_) r = find_in_core(active_ ^ 1, k.a, k.b, h);
  if (r != kNullRef) {
    Core& c = core_of(r);
    const std::size_t pos = pos_of(r);
    if (expired(c.last_seen[pos], now)) {
      erase(r);
      ++expired_total_;
      ++misses_;
      return std::nullopt;
    }
    // Lazy wheel: only the timestamp moves; gc_tick relinks on visit.
    c.last_seen[pos] = now;
    ++hits_;
    return c.vri[pos];
  }
  if (!stash_.empty()) {
    ++last_probe_len_;
    const int i = find_in_stash(k.a, k.b);
    if (i >= 0) {
      const auto si = static_cast<std::size_t>(i);
      if (expired(stash_[si].last_seen, now)) {
        stash_[si] = stash_.back();
        stash_.pop_back();
        ++expired_total_;
        ++misses_;
        return std::nullopt;
      }
      stash_[si].last_seen = now;
      ++hits_;
      return stash_[si].vri;
    }
  }
  ++misses_;
  return std::nullopt;
}

bool FlowTableV2::insert(const FiveTuple& t, int vri, Nanos now) {
  if (resizing_) migrate_step(2, now);
  reclaim_step();
  last_probe_len_ = 0;
  const PackedTuple k = pack_tuple(t);
  const std::uint64_t h = hash_packed(k);
  Ref r = find_in_core(active_, k.a, k.b, h);
  if (r == kNullRef && resizing_) r = find_in_core(active_ ^ 1, k.a, k.b, h);
  if (r != kNullRef) {
    // Update in place — including an expired-but-present entry, matching
    // FlowTable's overwrite semantics (live count unchanged, slot reused).
    Core& c = core_of(r);
    const std::size_t pos = pos_of(r);
    if (c.vri[pos] != vri) {
      unlink_vri(r);  // before the value changes: it locates the old head
      c.vri[pos] = vri;
      link_vri(r, vri);
    }
    c.last_seen[pos] = now;
    return true;
  }
  const int i = find_in_stash(k.a, k.b);
  if (i >= 0) {
    stash_[static_cast<std::size_t>(i)].vri = vri;
    stash_[static_cast<std::size_t>(i)].last_seen = now;
    return true;
  }
  maybe_start_resize(now);
  place(active_, Loose{.ka = k.a, .kb = k.b, .h = h, .last_seen = now,
                       .vri = vri});
  return true;
}

// ---------------------------------------------------------------------------
// Eviction and expiry.

std::size_t FlowTableV2::evict_vri(int vri) {
  std::size_t evicted = 0;
  if (vri >= 0 && static_cast<std::size_t>(vri) < vri_heads_.size()) {
    Ref r = vri_heads_[static_cast<std::size_t>(vri)];
    vri_heads_[static_cast<std::size_t>(vri)] = kNullRef;
    while (r != kNullRef) {
      Core& c = core_of(r);
      const std::size_t pos = pos_of(r);
      const Ref next = c.vri_next[pos];
      unlink_gc(r);
      c.tags[pos] = 0;
      --c.live;
      ++evicted;
      r = next;
    }
  }
  for (std::size_t i = 0; i < stash_.size();) {
    if (stash_[i].vri == vri) {
      stash_[i] = stash_.back();
      stash_.pop_back();
      ++evicted;
    } else {
      ++i;
    }
  }
  return evicted;
}

std::size_t FlowTableV2::gc_process_chain(Ref r, std::size_t& budget,
                                          Nanos now) {
  std::size_t expired_count = 0;
  while (r != kNullRef) {
    if (budget == 0) {
      // Budget exhausted: re-park the unprocessed remainder on the overflow
      // chain, to be drained first next tick. Only the new head's wheel
      // byte is rewritten — O(1), interiors keep stale bytes (harmless:
      // unlink_gc propagates the byte on every head removal).
      Core& c = core_of(r);
      const std::size_t pos = pos_of(r);
      c.wheel[pos] = static_cast<std::uint8_t>(kWheelSlots);
      c.gc_prev[pos] = kNullRef;
      wheel_heads_[kWheelSlots] = r;
      return expired_count;
    }
    --budget;
    Core& c = core_of(r);
    const std::size_t pos = pos_of(r);
    const Ref next = c.gc_next[pos];
    if (expired(c.last_seen[pos], now)) {
      unlink_vri(r);
      c.tags[pos] = 0;
      --c.live;
      ++expired_total_;
      ++expired_count;
    } else {
      // Refreshed since scheduling (lazy wheel): relink at the deadline
      // its current timestamp implies.
      link_gc(r, wheel_slot_for(c.last_seen[pos] + idle_timeout_));
    }
    r = next;
  }
  return expired_count;
}

std::size_t FlowTableV2::gc_tick(Nanos now) {
  if (idle_timeout_ <= 0) return 0;
  std::size_t budget = kGcBudgetPerTick;
  std::size_t expired_count = 0;
  // Overflow from a previous budget-capped tick drains first (it carries
  // the oldest deadlines). Popped whole, like slot chains: survivors relink
  // into real slots, the remainder re-parks.
  if (wheel_heads_[kWheelSlots] != kNullRef) {
    const Ref pending = wheel_heads_[kWheelSlots];
    wheel_heads_[kWheelSlots] = kNullRef;
    expired_count += gc_process_chain(pending, budget, now);
  }
  if (wheel_time_ + gran_ > now && expired_count == 0) return expired_count;
  int slots_done = 0;
  while (budget > 0 && wheel_time_ + gran_ <= now) {
    if (slots_done++ >= kWheelSlots) {
      // A gap longer than a full revolution: every slot was just visited
      // once, so jump the cursor instead of spinning through empty windows.
      wheel_time_ = now - (now % gran_);
      break;
    }
    const int idx = wheel_slot_for(wheel_time_);
    // Pop the whole chain first: survivors relink (possibly into this same
    // slot, for next revolution), and a half-walked chain must never be
    // re-entered through the head mid-processing.
    const Ref r = wheel_heads_[idx];
    wheel_heads_[idx] = kNullRef;
    expired_count += gc_process_chain(r, budget, now);
    // The window advances even when the chain overflowed the budget: its
    // remainder lives on the overflow chain now, not in this slot. Lookups
    // still enforce exact expiry, so the delay is reclamation-only.
    wheel_time_ += gran_;
  }
  // The stash is outside the wheel (it is tiny and churns); sweep it on the
  // same cadence.
  for (std::size_t i = 0; i < stash_.size();) {
    if (expired(stash_[i].last_seen, now)) {
      stash_[i] = stash_.back();
      stash_.pop_back();
      ++expired_total_;
      ++expired_count;
    } else {
      ++i;
    }
  }
  return expired_count;
}

// ---------------------------------------------------------------------------
// Incremental resize.

void FlowTableV2::maybe_start_resize(Nanos now) {
  Core& a = cores_[active_];
  // Grow when this insert would push occupancy past 7/8 of the slots.
  const bool over_load =
      (a.live + 1) * 8 > a.n_buckets * kSlotsPerBucket * 7;
  const bool stash_pressure = stash_.size() > 32;
  if (!over_load && !stash_pressure) return;
  if (resizing_) {
    // A migration is already draining; it folds the stash back in when it
    // completes, so stash pressure alone never stacks resizes. Only the
    // active generation itself filling up — adversarial fill rates — forces
    // the drain to completion so at most two generations ever exist.
    if (!over_load) return;
    migrate_step(cores_[active_ ^ 1].n_buckets, now);
  }
  const std::size_t before = a.n_buckets * kSlotsPerBucket;
  const int fresh = active_ ^ 1;
  alloc_core(cores_[fresh], a.n_buckets * 2);
  active_ = fresh;
  resizing_ = true;
  migrate_cursor_ = 0;
  migrated_entries_ = 0;
  ++resizes_started_;
  if (on_resize_) {
    on_resize_(FlowResizeEvent{.cause = FlowResizeCause::kLoadFactor,
                               .buckets_before = before,
                               .buckets_after = capacity(),
                               .migrated = 0});
  }
}

void FlowTableV2::migrate_step(std::size_t max_buckets, Nanos now) {
  if (!resizing_) return;
  Core& old = cores_[active_ ^ 1];
  std::size_t done = 0;
  while (done < max_buckets && migrate_cursor_ < old.n_buckets) {
    const std::size_t base = migrate_cursor_ * kSlotsPerBucket;
    for (std::size_t lane = 0; lane < kSlotsPerBucket; ++lane) {
      if (old.tags[base + lane] == 0) continue;
      Loose e = extract(make_ref(active_ ^ 1, base + lane));
      if (expired(e.last_seen, now)) {
        // Migration doubles as an expiry purge: dead entries are dropped
        // instead of copied, so a resize also compacts.
        ++expired_total_;
      } else {
        place(active_, e);
        ++migrated_entries_;
      }
    }
    ++migrate_cursor_;
    ++done;
  }
  if (migrate_cursor_ >= old.n_buckets) {
    // Old generation drained: fold the stash back into the doubled table
    // (its entries were overflow of the cramped one), then retire the old
    // arrays. One completion event, not one per step.
    std::vector<Loose> overflow;
    overflow.swap(stash_);
    for (const Loose& e : overflow) place(active_, e);
    const std::size_t before = old.n_buckets * kSlotsPerBucket;
    release_core(old);
    resizing_ = false;
    ++resizes_completed_;
    if (on_resize_) {
      on_resize_(FlowResizeEvent{.cause = FlowResizeCause::kIncrementalStep,
                                 .buckets_before = before,
                                 .buckets_after = capacity(),
                                 .migrated = migrated_entries_});
    }
  }
}

}  // namespace lvrm::net
