#include "net/trace.hpp"

#include "net/flow.hpp"
#include "net/headers.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace lvrm::net {

std::vector<FrameMeta> generate_trace(const TraceSpec& spec) {
  std::vector<Prefix> subnets = spec.src_subnets;
  if (subnets.empty()) subnets.push_back(Prefix{ipv4(10, 1, 0, 0), 16});

  Rng rng(spec.seed);
  std::vector<FrameMeta> out;
  out.reserve(spec.frames);
  for (std::uint64_t i = 0; i < spec.frames; ++i) {
    const auto flow = static_cast<std::uint32_t>(i % static_cast<std::uint64_t>(
        spec.flows > 0 ? spec.flows : 1));
    const Prefix& net = subnets[i % subnets.size()];
    FrameMeta f;
    f.id = i;
    f.kind = FrameKind::kUdp;
    f.wire_bytes = spec.wire_bytes;
    f.protocol = kProtoUdp;
    // Hosts within the subnet: stable per flow so flow-based balancing sees
    // repeat 5-tuples.
    const Ipv4Addr host_bits =
        static_cast<Ipv4Addr>(hash_tuple(FiveTuple{flow, 0, 0, 0, 0}) &
                              ~prefix_mask(net.length));
    f.src_ip = net.network | (host_bits == 0 ? 1 : host_bits);
    f.dst_ip = spec.dst_base + flow % 250;
    f.src_port = static_cast<std::uint16_t>(10000 + flow);
    f.dst_port = 9;  // discard
    f.flow_index = static_cast<std::int32_t>(flow);
    (void)rng;
    out.push_back(f);
  }
  return out;
}

namespace {
constexpr char kMagic[8] = {'L', 'V', 'R', 'M', 'T', 'R', 'C', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  os.write(buf, 8);
}

void write_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  os.write(buf, 4);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}
}  // namespace

void write_trace(std::ostream& os,
                 const std::vector<std::vector<std::uint8_t>>& frames) {
  os.write(kMagic, sizeof kMagic);
  write_u64(os, frames.size());
  for (const auto& f : frames) {
    write_u32(os, static_cast<std::uint32_t>(f.size()));
    os.write(reinterpret_cast<const char*>(f.data()),
             static_cast<std::streamsize>(f.size()));
  }
}

void write_pcap(std::ostream& os,
                const std::vector<std::vector<std::uint8_t>>& frames,
                Nanos base, Nanos gap) {
  // Global header: magic, version 2.4, zone 0, sigfigs 0, snaplen, linktype.
  write_u32(os, 0xA1B2C3D4u);
  write_u32(os, 2u | (4u << 16));  // u16 major=2, u16 minor=4, little-endian
  write_u32(os, 0);
  write_u32(os, 0);
  write_u32(os, 65535);
  write_u32(os, 1);  // LINKTYPE_ETHERNET
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Nanos ts = base + gap * static_cast<Nanos>(i);
    write_u32(os, static_cast<std::uint32_t>(ts / kNanosPerSec));
    write_u32(os, static_cast<std::uint32_t>((ts % kNanosPerSec) / 1000));
    write_u32(os, static_cast<std::uint32_t>(frames[i].size()));
    write_u32(os, static_cast<std::uint32_t>(frames[i].size()));
    os.write(reinterpret_cast<const char*>(frames[i].data()),
             static_cast<std::streamsize>(frames[i].size()));
  }
}

std::vector<PcapRecord> read_pcap(std::istream& is) {
  if (read_u32(is) != 0xA1B2C3D4u || !is)
    throw std::runtime_error("read_pcap: bad magic");
  read_u32(is);  // version
  read_u32(is);  // thiszone
  read_u32(is);  // sigfigs
  read_u32(is);  // snaplen
  if (read_u32(is) != 1) throw std::runtime_error("read_pcap: not Ethernet");
  std::vector<PcapRecord> out;
  while (true) {
    const std::uint32_t sec_part = read_u32(is);
    if (!is) break;  // clean EOF at a record boundary
    const std::uint32_t usec_part = read_u32(is);
    const std::uint32_t incl = read_u32(is);
    const std::uint32_t orig = read_u32(is);
    (void)orig;
    if (!is) throw std::runtime_error("read_pcap: truncated record header");
    PcapRecord rec;
    rec.timestamp = static_cast<Nanos>(sec_part) * kNanosPerSec +
                    static_cast<Nanos>(usec_part) * 1000;
    rec.frame.resize(incl);
    is.read(reinterpret_cast<char*>(rec.frame.data()), incl);
    if (!is) throw std::runtime_error("read_pcap: truncated frame");
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> read_trace(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::string(magic, 8) != std::string(kMagic, 8))
    throw std::runtime_error("read_trace: bad magic");
  const std::uint64_t count = read_u64(is);
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t len = read_u32(is);
    std::vector<std::uint8_t> frame(len);
    is.read(reinterpret_cast<char*>(frame.data()), len);
    if (!is) throw std::runtime_error("read_trace: truncated trace");
    out.push_back(std::move(frame));
  }
  return out;
}

}  // namespace lvrm::net
