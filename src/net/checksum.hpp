// checksum.hpp — RFC 1071 Internet checksum.
#pragma once

#include <cstdint>
#include <span>

namespace lvrm::net {

/// One's-complement sum folded to 16 bits over `data` (odd lengths padded
/// with a zero byte), returned already complemented — i.e. the value to put
/// in a header's checksum field. Verifying a buffer that includes a correct
/// checksum field yields 0.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Incremental form: continues a running 32-bit sum (not yet folded).
std::uint32_t checksum_accumulate(std::uint32_t sum,
                                  std::span<const std::uint8_t> data);

/// Folds and complements an accumulated sum.
std::uint16_t checksum_finish(std::uint32_t sum);

}  // namespace lvrm::net
