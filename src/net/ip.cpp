#include "net/ip.hpp"

#include <cstdio>
#include <cstdlib>

namespace lvrm::net {

std::string format_ipv4(Ipv4Addr addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

std::optional<Ipv4Addr> parse_ipv4(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int n = std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return ipv4(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::optional<Prefix> parse_prefix(const std::string& s) {
  const auto slash = s.find('/');
  if (slash == std::string::npos) return std::nullopt;
  const auto addr = parse_ipv4(s.substr(0, slash));
  if (!addr) return std::nullopt;
  char* end = nullptr;
  const long len = std::strtol(s.c_str() + slash + 1, &end, 10);
  if (end == s.c_str() + slash + 1 || *end != '\0' || len < 0 || len > 32)
    return std::nullopt;
  return Prefix{*addr & prefix_mask(static_cast<int>(len)),
                static_cast<int>(len)};
}

}  // namespace lvrm::net
