// mac.hpp — Ethernet MAC addresses.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace lvrm::net {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  bool operator==(const MacAddr&) const = default;

  static constexpr MacAddr broadcast() {
    return MacAddr{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }

  /// Deterministic unicast address derived from a small integer id; used by
  /// the simulated hosts/interfaces.
  static constexpr MacAddr from_id(std::uint32_t id) {
    return MacAddr{{0x02, 0x00,  // locally administered, unicast
                    static_cast<std::uint8_t>(id >> 24),
                    static_cast<std::uint8_t>(id >> 16),
                    static_cast<std::uint8_t>(id >> 8),
                    static_cast<std::uint8_t>(id)}};
  }
};

std::string format_mac(const MacAddr& mac);
std::optional<MacAddr> parse_mac(const std::string& s);

}  // namespace lvrm::net
