#include "net/mac.hpp"

#include <cstdio>

namespace lvrm::net {

std::string format_mac(const MacAddr& mac) {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                mac.bytes[0], mac.bytes[1], mac.bytes[2], mac.bytes[3],
                mac.bytes[4], mac.bytes[5]);
  return buf;
}

std::optional<MacAddr> parse_mac(const std::string& s) {
  unsigned b[6];
  char tail = 0;
  const int n = std::sscanf(s.c_str(), "%x:%x:%x:%x:%x:%x%c", &b[0], &b[1],
                            &b[2], &b[3], &b[4], &b[5], &tail);
  if (n != 6) return std::nullopt;
  MacAddr mac;
  for (int i = 0; i < 6; ++i) {
    if (b[i] > 0xFF) return std::nullopt;
    mac.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(b[i]);
  }
  return mac;
}

}  // namespace lvrm::net
