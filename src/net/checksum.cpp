#include "net/checksum.hpp"

namespace lvrm::net {

std::uint32_t checksum_accumulate(std::uint32_t sum,
                                  std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_accumulate(0, data));
}

}  // namespace lvrm::net
