#include "baseline/forwarders.hpp"

#include "sim/costs.hpp"

namespace lvrm::baseline {

namespace costs = sim::costs;

namespace {
// The Fig 4.1 testbed map: sender subnet behind if 0, receivers behind if 1.
constexpr const char* kTestbedRouteMap = "10.1.0.0/16 0\n10.2.0.0/16 1\n";
}  // namespace

SimpleForwarder::Params SimpleForwarder::linux_params() {
  return Params{"native-linux", costs::kKernelForwardFixed,
                costs::kKernelForwardPerByte, sim::CostCategory::kSoftirq,
                costs::kKernelRxRing, 0};
}

SimpleForwarder::Params SimpleForwarder::vmware_params() {
  return Params{"vmware-server", costs::kVmwarePerFrame, costs::kVmwarePerByte,
                sim::CostCategory::kSystem, costs::kKernelRxRing,
                costs::kVmwareLatency};
}

SimpleForwarder::Params SimpleForwarder::kvm_params() {
  return Params{"qemu-kvm", costs::kKvmPerFrame, costs::kKvmPerByte,
                sim::CostCategory::kSystem, costs::kKernelRxRing,
                costs::kKvmLatency};
}

SimpleForwarder::SimpleForwarder(sim::Simulator& sim, Params params,
                                 const std::string& route_map)
    : sim_(sim),
      params_(std::move(params)),
      core_(sim, 0, costs::kContextSwitch),
      ring_(params_.ring_capacity, params_.name + "/rx"),
      server_(sim, core_, /*owner=*/1, params_.name) {
  const std::string map = route_map.empty() ? kTestbedRouteMap : route_map;
  for (const auto& entry : route::parse_route_map(map)) table_.insert(entry);

  server_.add_input(
      ring_, /*priority=*/0,
      [this](net::FrameMeta& f) {
        const auto route = table_.lookup(f.dst_ip);
        f.output_if = route ? route->output_if : -1;
        return params_.fixed_cost +
               static_cast<Nanos>(params_.per_byte_cost * f.wire_bytes);
      },
      [this](net::FrameMeta&& f) {
        if (f.output_if < 0) {
          ++no_route_;
          return;
        }
        ++forwarded_;
        if (!egress_) return;
        if (params_.extra_latency > 0) {
          // Hypervisor + guest stack traversal: latency without gateway CPU.
          sim_.after(params_.extra_latency, [this, f]() mutable {
            f.gw_out_at = sim_.now();
            egress_(std::move(f));
          });
        } else {
          f.gw_out_at = sim_.now();
          egress_(std::move(f));
        }
      },
      params_.category);
  server_.start();
}

bool SimpleForwarder::ingress(net::FrameMeta frame) {
  frame.gw_in_at = sim_.now();
  return ring_.push(frame);
}

}  // namespace lvrm::baseline
