// forwarders.hpp — the non-LVRM forwarding mechanisms Experiment 1 compares.
//
// Three baselines from Sec 4.2:
//   * native Linux IP forwarding — the kernel forwards in softirq context;
//     the cheapest path and the paper's reference ("highest achievable
//     throughput for all frame sizes").
//   * VMware Server and QEMU-KVM — a guest VM in bridged mode forwards the
//     frames; every frame pays virtualization overhead (vmexits, virtual NIC
//     emulation) and extra latency traversing hypervisor + guest stack.
//
// All three share one shape — a bounded RX ring feeding a single serial
// per-frame service — so SimpleForwarder models them with per-mechanism
// parameters from sim/costs.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "net/frame.hpp"
#include "route/route_table.hpp"
#include "sim/core.hpp"
#include "sim/poll_server.hpp"
#include "sim/queue.hpp"
#include "sim/simulator.hpp"

namespace lvrm::baseline {

class SimpleForwarder {
 public:
  struct Params {
    std::string name;
    Nanos fixed_cost = 0;        // per-frame CPU cost
    double per_byte_cost = 0.0;  // ns per wire byte
    sim::CostCategory category = sim::CostCategory::kSoftirq;
    std::size_t ring_capacity = 512;
    /// One-way latency added outside the CPU (hypervisor/guest traversal).
    Nanos extra_latency = 0;
  };

  static Params linux_params();
  static Params vmware_params();
  static Params kvm_params();

  /// `route_map` in parse_route_map format (defaults to the Fig 4.1 testbed
  /// map when empty).
  SimpleForwarder(sim::Simulator& sim, Params params,
                  const std::string& route_map = {});

  /// Frame arrival at the device's input; false = RX-ring tail drop.
  bool ingress(net::FrameMeta frame);

  void set_egress(std::function<void(net::FrameMeta&&)> egress) {
    egress_ = std::move(egress);
  }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t drops() const { return ring_.drops() + no_route_; }
  sim::Core& core() { return core_; }
  const Params& params() const { return params_; }

 private:
  sim::Simulator& sim_;
  Params params_;
  route::RouteTable table_;
  sim::Core core_;
  sim::BoundedQueue<net::FrameMeta> ring_;
  sim::PollServer<net::FrameMeta> server_;
  std::function<void(net::FrameMeta&&)> egress_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t no_route_ = 0;
};

}  // namespace lvrm::baseline
