// spsc_ring.hpp — Lamport-style lock-free single-producer/single-consumer ring.
//
// This is the thesis' IPC queue (Sec 3.5): the producer and consumer may run
// concurrently "so long as they do not access the same queue entry", with no
// locks — correctness follows Lamport's classic proof for a single producer
// and single consumer. Each LVRM<->VRI pair owns exactly one direction of one
// ring, so the SPSC restriction holds by construction.
//
// Implementation notes (the CP.free "only when you have to" case — this is a
// hot per-frame path shared between two pinned processes):
//   * head_ is written only by the consumer, tail_ only by the producer.
//   * acquire/release pairs order payload writes against index publication.
//   * indices monotonically increase and are masked on use, so full/empty are
//     distinguishable without wasting a slot (capacity entries usable).
//   * both indices live on their own cache line to avoid false sharing (the
//     cache-optimized refinement of FastForward/MCRingBuffer cited as [17,24]).
//   * each endpoint keeps a private *cache* of the peer's index on its own
//     line and refreshes it from the shared atomic only when the cache says
//     "apparently full/empty" — so a push usually touches no consumer-owned
//     line at all, and a pop no producer-owned line (the same trick
//     MCRingBuffer applies to its batched publication).
//   * try_push_batch/try_pop_batch move a whole burst per acquire/release
//     pair, amortizing the coherence traffic the per-frame hop otherwise
//     pays once per element.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <utility>

#include "obs/ring_stats.hpp"  // header-only; no link dependency

namespace lvrm::queue {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Attaches an optional telemetry block (DESIGN.md §10). Must be called
  /// before the endpoints start; unattached rings pay one predicted-
  /// not-taken branch per operation and touch no extra cache line.
  void attach_stats(obs::RingStats* stats) { stats_ = stats; }

  /// Producer side. Returns false when the ring is full. Reads the shared
  /// head only when the cached copy says the ring is apparently full.
  bool try_push(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) {
        if (stats_) stats_->on_push_fail(1);
        return false;
      }
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    if (stats_) stats_->on_push(1);
    return true;
  }

  /// Producer side: pushes up to `n` items from `items[0..n)` (moved-from on
  /// success) in FIFO order and returns how many were accepted — fewer than
  /// `n` iff the ring filled up (partial push). One refresh of the cached
  /// head at most and exactly one release publication for the whole burst.
  std::size_t try_push_batch(T* items, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t free = capacity_ - (tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - head_cache_);
    }
    const std::size_t k = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, free));
    // Masked per-slot moves beat a two-chunk split here: the chunk loops
    // become memmove libcalls whose fixed cost exceeds a burst's worth of
    // inline moves at typical batch sizes.
    for (std::size_t i = 0; i < k; ++i)
      slots_[(tail + i) & mask_] = std::move(items[i]);
    if (k > 0) tail_.store(tail + k, std::memory_order_release);
    if (stats_) {
      if (k > 0) stats_->on_push(k);
      if (k < n) stats_->on_push_fail(n - k);
    }
    return k;
  }

  /// Consumer side. Returns nullopt when the ring is empty. Reads the shared
  /// tail only when the cached copy says the ring is apparently empty.
  std::optional<T> try_pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return std::nullopt;
    }
    T value = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    if (stats_) stats_->on_pop(1, tail_cache_ - head);
    return value;
  }

  /// Consumer side: pops up to `n` items into `out[0..n)` in FIFO order and
  /// returns how many were taken — fewer than `n` iff the ring drained
  /// (partial pop). One refresh of the cached tail at most and exactly one
  /// release of the consumed slots for the whole burst.
  std::size_t try_pop_batch(T* out, std::size_t n) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = tail_cache_ - head;
    if (avail < n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
    }
    const std::size_t k = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, avail));
    for (std::size_t i = 0; i < k; ++i)
      out[i] = std::move(slots_[(head + i) & mask_]);
    if (k > 0) head_.store(head + k, std::memory_order_release);
    if (stats_ && k > 0) stats_->on_pop(k, avail);
    return k;
  }

  /// Consumer-side peek without consuming; nullptr when empty. The returned
  /// pointer is valid until the next try_pop/try_pop_batch on this ring
  /// (a batch pop advances the head past the peeked slot).
  const T* peek() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Approximate occupancy. May be called from the CONSUMER endpoint only
  /// (the endpoint that reads depths in LVRM: JSQ load estimation and the
  /// health probes): the consumer is the sole writer of head_, so a relaxed
  /// load of its own index suffices; only the producer's tail_ needs acquire
  /// to observe the latest publication. The result is exact at the call and
  /// can only under-count concurrent pushes (never phantom entries). The
  /// producer must derive occupancy from its own accepted-push count.
  std::size_t size_approx() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty_approx() const { return size_approx() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;
  obs::RingStats* stats_ = nullptr;  // optional; set before use, then const

  // Consumer-owned line: its index plus its private cache of the producer's
  // (mutable so the logically-const peek() can refresh it; single-consumer,
  // so the mutation is unshared).
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  mutable std::uint64_t tail_cache_ = 0;

  // Producer-owned line: its index plus its private cache of the consumer's.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
};

}  // namespace lvrm::queue
