// spsc_ring.hpp — Lamport-style lock-free single-producer/single-consumer ring.
//
// This is the thesis' IPC queue (Sec 3.5): the producer and consumer may run
// concurrently "so long as they do not access the same queue entry", with no
// locks — correctness follows Lamport's classic proof for a single producer
// and single consumer. Each LVRM<->VRI pair owns exactly one direction of one
// ring, so the SPSC restriction holds by construction.
//
// Implementation notes (the CP.free "only when you have to" case — this is a
// hot per-frame path shared between two pinned processes):
//   * head_ is written only by the consumer, tail_ only by the producer.
//   * acquire/release pairs order payload writes against index publication.
//   * indices monotonically increase and are masked on use, so full/empty are
//     distinguishable without wasting a slot (capacity entries usable).
//   * both indices live on their own cache line to avoid false sharing (the
//     cache-optimized refinement of FastForward/MCRingBuffer cited as [17,24]).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <utility>

namespace lvrm::queue {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full.
  bool try_push(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= capacity_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    T value = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  /// Consumer-side peek without consuming; nullptr when empty. The returned
  /// pointer is valid until the next try_pop/pop on this ring.
  const T* peek() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return nullptr;
    return &slots_[head & mask_];
  }

  /// Approximate occupancy; exact when called from either endpoint's thread.
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty_approx() const { return size_approx() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;

  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // consumer-owned
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // producer-owned
};

}  // namespace lvrm::queue
