// spsc_ring.hpp — Lamport-style lock-free single-producer/single-consumer ring.
//
// This is the thesis' IPC queue (Sec 3.5): the producer and consumer may run
// concurrently "so long as they do not access the same queue entry", with no
// locks — correctness follows Lamport's classic proof for a single producer
// and single consumer. Each LVRM<->VRI pair owns exactly one direction of one
// ring, so the SPSC restriction holds by construction.
//
// Implementation notes (the CP.free "only when you have to" case — this is a
// hot per-frame path shared between two pinned processes):
//   * head_ is written only by the consumer, tail_ only by the producer.
//   * acquire/release pairs order payload writes against index publication.
//   * indices monotonically increase and are masked on use, so full/empty are
//     distinguishable without wasting a slot (capacity entries usable).
//   * both indices live on their own cache line to avoid false sharing (the
//     cache-optimized refinement of FastForward/MCRingBuffer cited as [17,24]).
//   * each endpoint keeps a private *cache* of the peer's index on its own
//     line and refreshes it from the shared atomic only when the cache says
//     "apparently full/empty" — so a push usually touches no consumer-owned
//     line at all, and a pop no producer-owned line (the same trick
//     MCRingBuffer applies to its batched publication).
//   * try_push_batch/try_pop_batch move a whole burst per acquire/release
//     pair, amortizing the coherence traffic the per-frame hop otherwise
//     pays once per element.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <utility>

#include "obs/ring_stats.hpp"  // header-only; no link dependency

namespace lvrm::queue {

// Destructive-interference granularity. Pinned to 64 rather than taken from
// std::hardware_destructive_interference_size: the library constant varies
// with -mtune (GCC warns about exactly that under -Winterference-size), and
// ring layouts are part of the shm protocol, so the padding must not change
// between builds. 64 B is the L1 line of every x86-64 and aarch64 part the
// thesis targets; the static_asserts on the padded index structs below keep
// this honest.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Attaches an optional telemetry block (DESIGN.md §10). Must be called
  /// before the endpoints start; unattached rings pay one predicted-
  /// not-taken branch per operation and touch no extra cache line.
  void attach_stats(obs::RingStats* stats) { stats_ = stats; }

  /// Producer side. Returns false when the ring is full. Reads the shared
  /// head only when the cached copy says the ring is apparently full.
  bool try_push(T value) {
    const std::uint64_t tail = prod_.tail.load(std::memory_order_relaxed);
    if (tail - prod_.head_cache >= capacity_) {
      prod_.head_cache = cons_.head.load(std::memory_order_acquire);
      if (tail - prod_.head_cache >= capacity_) {
        if (stats_) stats_->on_push_fail(1);
        return false;
      }
    }
    slots_[tail & mask_] = std::move(value);
    prod_.tail.store(tail + 1, std::memory_order_release);
    if (stats_) stats_->on_push(1);
    return true;
  }

  /// Producer side: pushes up to `n` items from `items[0..n)` (moved-from on
  /// success) in FIFO order and returns how many were accepted — fewer than
  /// `n` iff the ring filled up (partial push). One refresh of the cached
  /// head at most and exactly one release publication for the whole burst.
  std::size_t try_push_batch(T* items, std::size_t n) {
    const std::uint64_t tail = prod_.tail.load(std::memory_order_relaxed);
    std::uint64_t free = capacity_ - (tail - prod_.head_cache);
    if (free < n) {
      prod_.head_cache = cons_.head.load(std::memory_order_acquire);
      free = capacity_ - (tail - prod_.head_cache);
    }
    const std::size_t k = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, free));
    // Masked per-slot moves beat a two-chunk split here: the chunk loops
    // become memmove libcalls whose fixed cost exceeds a burst's worth of
    // inline moves at typical batch sizes.
    for (std::size_t i = 0; i < k; ++i)
      slots_[(tail + i) & mask_] = std::move(items[i]);
    if (k > 0) prod_.tail.store(tail + k, std::memory_order_release);
    if (stats_) {
      if (k > 0) stats_->on_push(k);
      if (k < n) stats_->on_push_fail(n - k);
    }
    return k;
  }

  /// Consumer side. Returns nullopt when the ring is empty. Reads the shared
  /// tail only when the cached copy says the ring is apparently empty.
  std::optional<T> try_pop() {
    const std::uint64_t head = cons_.head.load(std::memory_order_relaxed);
    if (head == cons_.tail_cache) {
      cons_.tail_cache = prod_.tail.load(std::memory_order_acquire);
      if (head == cons_.tail_cache) return std::nullopt;
    }
    T value = std::move(slots_[head & mask_]);
    cons_.head.store(head + 1, std::memory_order_release);
    if (stats_) stats_->on_pop(1, cons_.tail_cache - head);
    return value;
  }

  /// Consumer side: pops up to `n` items into `out[0..n)` in FIFO order and
  /// returns how many were taken — fewer than `n` iff the ring drained
  /// (partial pop). One refresh of the cached tail at most and exactly one
  /// release of the consumed slots for the whole burst.
  std::size_t try_pop_batch(T* out, std::size_t n) {
    const std::uint64_t head = cons_.head.load(std::memory_order_relaxed);
    std::uint64_t avail = cons_.tail_cache - head;
    if (avail < n) {
      cons_.tail_cache = prod_.tail.load(std::memory_order_acquire);
      avail = cons_.tail_cache - head;
    }
    const std::size_t k = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, avail));
    for (std::size_t i = 0; i < k; ++i)
      out[i] = std::move(slots_[(head + i) & mask_]);
    if (k > 0) cons_.head.store(head + k, std::memory_order_release);
    if (stats_ && k > 0) stats_->on_pop(k, avail);
    return k;
  }

  /// Consumer-side peek without consuming; nullptr when empty. The returned
  /// pointer is valid until the next try_pop/try_pop_batch on this ring
  /// (a batch pop advances the head past the peeked slot).
  const T* peek() const {
    const std::uint64_t head = cons_.head.load(std::memory_order_relaxed);
    if (head == cons_.tail_cache) {
      cons_.tail_cache = prod_.tail.load(std::memory_order_acquire);
      if (head == cons_.tail_cache) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Approximate occupancy. May be called from the CONSUMER endpoint only
  /// (the endpoint that reads depths in LVRM: JSQ load estimation and the
  /// health probes): the consumer is the sole writer of head_, so a relaxed
  /// load of its own index suffices; only the producer's tail_ needs acquire
  /// to observe the latest publication. The result is exact at the call and
  /// can only under-count concurrent pushes (never phantom entries). The
  /// producer must derive occupancy from its own accepted-push count.
  std::size_t size_approx() const {
    const std::uint64_t head = cons_.head.load(std::memory_order_relaxed);
    const std::uint64_t tail = prod_.tail.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty_approx() const { return size_approx() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  // Owner-grouped index blocks: each endpoint's shared index and its private
  // cache of the peer's index share one line, padded to a full line so the
  // two endpoints never false-share (cache-line hygiene, DESIGN.md §12).
  // The consumer block is mutable so the logically-const peek() can refresh
  // the cache; single-consumer, so the mutation is unshared.
  struct alignas(kCacheLine) ConsumerSide {
    std::atomic<std::uint64_t> head{0};
    std::uint64_t tail_cache = 0;
  };
  struct alignas(kCacheLine) ProducerSide {
    std::atomic<std::uint64_t> tail{0};
    std::uint64_t head_cache = 0;
  };
  static_assert(sizeof(ConsumerSide) == kCacheLine &&
                    alignof(ConsumerSide) == kCacheLine,
                "consumer indices must own exactly one cache line");
  static_assert(sizeof(ProducerSide) == kCacheLine &&
                    alignof(ProducerSide) == kCacheLine,
                "producer indices must own exactly one cache line");

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;
  obs::RingStats* stats_ = nullptr;  // optional; set before use, then const

  mutable ConsumerSide cons_;
  ProducerSide prod_;
};

}  // namespace lvrm::queue
