// fastforward_ring.hpp — FastForward-style slot-flagged SPSC ring.
//
// The thesis notes that "other improved lock-free queue implementations
// [17, 24] can also be used in LVRM" (Sec 3.5). This is [17]: Giacomoni,
// Moseley & Vachharajani, "FastForward for efficient pipeline parallelism:
// a cache-optimized concurrent lock-free queue" (PPoPP'08).
//
// FastForward's key idea: producer and consumer never read each other's
// index. Emptiness/fullness is encoded *in the slots themselves* — a slot
// holds either a valid entry or the sentinel "empty" value — so the only
// cache-line traffic between the cores is the payload slots, and head/tail
// stay exclusively in their owner's cache.
//
// Template requirement: T must have a reserved "empty" representation. The
// adapter below stores T behind an occupancy flag per slot, preserving the
// index-free property while lifting the sentinel restriction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "queue/spsc_ring.hpp"  // kCacheLine

namespace lvrm::queue {

template <typename T>
class FastForwardRing {
 public:
  explicit FastForwardRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  FastForwardRing(const FastForwardRing&) = delete;
  FastForwardRing& operator=(const FastForwardRing&) = delete;

  /// Producer: writes into the head slot if it is empty. No consumer-owned
  /// state is read — FastForward's defining property.
  bool try_push(T value) {
    Slot& slot = slots_[tail_.value & mask_];
    if (slot.full.load(std::memory_order_acquire)) return false;  // ring full
    slot.value = std::move(value);
    slot.full.store(true, std::memory_order_release);
    ++tail_.value;  // producer-private, non-atomic
    return true;
  }

  /// Consumer: takes from the tail slot if it is occupied.
  std::optional<T> try_pop() {
    Slot& slot = slots_[head_.value & mask_];
    if (!slot.full.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(slot.value);
    slot.full.store(false, std::memory_order_release);
    ++head_.value;  // consumer-private, non-atomic
    return value;
  }

  /// Producer-side batch push: stops at the first occupied slot (ring full),
  /// returns the number accepted. Each slot still carries its own flag —
  /// FastForward has no shared index to amortize — but the loop keeps the
  /// occupancy checks and payload writes in one streaming pass.
  std::size_t try_push_batch(T* items, std::size_t n) {
    std::size_t k = 0;
    for (; k < n; ++k) {
      Slot& slot = slots_[(tail_.value + k) & mask_];
      if (slot.full.load(std::memory_order_acquire)) break;
      slot.value = std::move(items[k]);
      slot.full.store(true, std::memory_order_release);
    }
    tail_.value += k;
    return k;
  }

  /// Consumer-side batch pop: stops at the first empty slot, returns the
  /// number taken.
  std::size_t try_pop_batch(T* out, std::size_t n) {
    std::size_t k = 0;
    for (; k < n; ++k) {
      Slot& slot = slots_[(head_.value + k) & mask_];
      if (!slot.full.load(std::memory_order_acquire)) break;
      out[k] = std::move(slot.value);
      slot.full.store(false, std::memory_order_release);
    }
    head_.value += k;
    return k;
  }

  /// Occupancy by scanning would defeat the design; expose only emptiness
  /// hints usable from the respective endpoints.
  bool empty_hint() const {
    return !slots_[head_.value & mask_].full.load(std::memory_order_acquire);
  }
  bool full_hint() const {
    return slots_[tail_.value & mask_].full.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    // The flag and the value share the slot's cache line(s); only slots
    // migrate between the producer's and consumer's caches.
    std::atomic<bool> full{false};
    T value{};
  };

  /// A private index padded to a full cache line: head and tail are never
  /// shared in FastForward, but they must not share a line with each other
  /// (or the cold members above) either, or the endpoints false-share.
  struct alignas(kCacheLine) PrivateIndex {
    std::uint64_t value = 0;
  };
  static_assert(sizeof(PrivateIndex) == kCacheLine &&
                    alignof(PrivateIndex) == kCacheLine,
                "each private index must own exactly one cache line");

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;

  PrivateIndex head_;  // consumer-private
  PrivateIndex tail_;  // producer-private
};

}  // namespace lvrm::queue
