// control_event.hpp — inter-VRI control messages.
//
// VRIs of one VR synchronize state (e.g. routing updates) by exchanging
// control events over dedicated control queues that outrank data queues
// (Sec 2.1). The thesis leaves the payload protocol to the user, "similar to
// the UDP socket programming" — so the payload here is an opaque byte vector
// plus the addressing and timing metadata the monitor needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace lvrm::queue {

struct ControlEvent {
  int src_vri = -1;
  int dst_vri = -1;
  std::uint32_t kind = 0;  // user-defined message type
  std::vector<std::uint8_t> payload;
  Nanos sent_at = 0;

  std::size_t wire_size() const { return payload.size() + 16; }
};

}  // namespace lvrm::queue
