// shm_arena.hpp — simulated System-V shared memory segments.
//
// The real LVRM allocates one shared memory segment per IPC queue via
// shmget() and hands the identifier to each VRI through its main() arguments
// (Sec 3.8). Inside this repository LVRM and the VRIs share an address space,
// so ShmArena reproduces the *protocol* — integer identifiers resolved to
// byte regions, explicit attach/detach, failure on unknown ids — without the
// kernel: the LVRM adapter is still initialized from a segment id exactly as
// the thesis describes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace lvrm::queue {

using SegmentId = int;
inline constexpr SegmentId kInvalidSegment = -1;

class ShmArena {
 public:
  /// shmget() analogue: allocates a zeroed segment, returns its id.
  SegmentId create(std::size_t bytes);

  /// shmat() analogue: resolves an id to its memory; empty span on failure.
  std::span<std::uint8_t> attach(SegmentId id);

  /// shmctl(IPC_RMID) analogue; destroying an unknown id is a no-op.
  void destroy(SegmentId id);

  std::size_t segment_count() const { return segments_.size(); }
  std::size_t total_bytes() const { return total_bytes_; }

 private:
  std::unordered_map<SegmentId, std::vector<std::uint8_t>> segments_;
  SegmentId next_id_ = 1000;  // arbitrary non-zero base, like real shm ids
  std::size_t total_bytes_ = 0;
};

}  // namespace lvrm::queue
