#include "queue/shm_arena.hpp"

namespace lvrm::queue {

SegmentId ShmArena::create(std::size_t bytes) {
  const SegmentId id = next_id_++;
  segments_.emplace(id, std::vector<std::uint8_t>(bytes, 0));
  total_bytes_ += bytes;
  return id;
}

std::span<std::uint8_t> ShmArena::attach(SegmentId id) {
  const auto it = segments_.find(id);
  if (it == segments_.end()) return {};
  return std::span<std::uint8_t>(it->second);
}

void ShmArena::destroy(SegmentId id) {
  const auto it = segments_.find(id);
  if (it == segments_.end()) return;
  total_bytes_ -= it->second.size();
  segments_.erase(it);
}

}  // namespace lvrm::queue
