// locked_queue.hpp — mutex-based bounded MPMC queue.
//
// The lock-based alternative the thesis compares against ("it is more
// efficient than the lock-based synchronization, in which only one process
// can access the queue at one time", Sec 3.5). Kept API-compatible with
// SpscRing so the ablation bench swaps implementations behind IpcQueue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lvrm::queue {

template <typename T>
class LockedQueue {
 public:
  explicit LockedQueue(std::size_t capacity) : capacity_(capacity) {}

  bool try_push(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  std::size_t size_approx() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty_approx() const { return size_approx() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

}  // namespace lvrm::queue
