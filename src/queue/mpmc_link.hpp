// mpmc_link.hpp — cache-line-segmented multi-producer/multi-consumer ring.
//
// The IPC fabric's virtual link (DESIGN.md §17): where the SPSC mesh needs
// O(shards × VRIs) rings, one MpmcLink per VRI (ingress) or per home shard
// (TX drain) carries 32-bit FrameHandles from *all* producers to *any*
// consumer, which is what makes TX-drain stealing and idle-VRI stealing
// possible at all. The design follows the Virtual-Link / rte_ring family:
//
//   * Two counters per side, each on its own cache line: a CLAIM counter
//     producers (consumers) race on with CAS, and a PUBLISH counter that
//     makes claimed slots visible to the other side.
//   * A producer claims a contiguous run of slots with one CAS on
//     `prod_claim`, fills them racing nobody (per-producer claimed slots),
//     then waits for earlier claimants to publish and issues exactly ONE
//     release store over its whole burst — the same single-publication
//     batching discipline as SpscRing::try_push_batch.
//   * Consumers mirror the scheme on `cons_claim`/`cons_pub`, so a burst
//     pop is likewise one CAS + one release store.
//
// The claim/publish split means the expensive part (slot copies) runs
// fully in parallel across producers; only the in-order publication
// serializes, and it serializes on a wait bounded by the peer's burst copy,
// not by a lock. Progress: a claimant spins only on claimants *ahead* of
// it, which are themselves copying a bounded burst, so the wait is
// wait-free-bounded in practice though not formally lock-free.
//
// API mirrors SpscRing (try_push/try_pop, try_push_batch/try_pop_batch,
// size_approx, capacity, attach_stats) so call sites and benches can swap
// the families. attach_stats itself (installing the pointer) must happen
// before any concurrent use; the RingStats counters are relaxed atomics and
// safe to bump from any endpoint thereafter.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "obs/ring_stats.hpp"  // header-only; no link dependency
#include "queue/spsc_ring.hpp"  // kCacheLine

namespace lvrm::queue {

template <typename T>
class MpmcLink {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit MpmcLink(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  MpmcLink(const MpmcLink&) = delete;
  MpmcLink& operator=(const MpmcLink&) = delete;

  /// Optional telemetry block (DESIGN.md §10). Single-threaded harnesses
  /// only — see the header comment.
  void attach_stats(obs::RingStats* stats) { stats_ = stats; }

  /// Any-producer push of up to `n` items in FIFO order (moved-from on
  /// success). Returns how many were accepted — fewer than `n` iff the link
  /// filled up. One CAS to claim the run, parallel slot fills, and exactly
  /// one release publication for the whole burst.
  std::size_t try_push_batch(T* items, std::size_t n) {
    std::uint64_t start;
    std::size_t k;
    std::uint64_t claim = prod_.claim.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t consumed =
          cons_.pub.load(std::memory_order_acquire);
      const std::uint64_t free = capacity_ - (claim - consumed);
      k = static_cast<std::size_t>(std::min<std::uint64_t>(n, free));
      if (k == 0) {
        if (stats_) stats_->on_push_fail(n);
        return 0;
      }
      if (prod_.claim.compare_exchange_weak(claim, claim + k,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed)) {
        start = claim;
        break;
      }
      // CAS failure reloaded `claim`; re-derive free space and retry.
    }
    for (std::size_t i = 0; i < k; ++i)
      slots_[(start + i) & mask_] = std::move(items[i]);
    // In-order publication: wait for every earlier claimant's single store,
    // then publish this burst with one release store.
    while (prod_.pub.load(std::memory_order_relaxed) != start) spin_pause();
    prod_.pub.store(start + k, std::memory_order_release);
    if (stats_) {
      stats_->on_push(k);
      if (k < n) stats_->on_push_fail(n - k);
    }
    return k;
  }

  /// Any-producer single push. Returns false when the link is full.
  bool try_push(T value) { return try_push_batch(&value, 1) == 1; }

  /// Any-consumer pop of up to `n` items into `out[0..n)` in FIFO order.
  /// Returns how many were taken — fewer than `n` iff the link drained.
  /// Mirrors the producer side: one CAS, parallel moves, one release store.
  std::size_t try_pop_batch(T* out, std::size_t n) {
    std::uint64_t start;
    std::size_t k;
    std::uint64_t claim = cons_.claim.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t published =
          prod_.pub.load(std::memory_order_acquire);
      const std::uint64_t avail = published - claim;
      k = static_cast<std::size_t>(std::min<std::uint64_t>(n, avail));
      if (k == 0) return 0;
      if (cons_.claim.compare_exchange_weak(claim, claim + k,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed)) {
        start = claim;
        break;
      }
    }
    for (std::size_t i = 0; i < k; ++i)
      out[i] = std::move(slots_[(start + i) & mask_]);
    // Retire in claim order so a producer never overwrites a slot a slower
    // consumer is still reading.
    while (cons_.pub.load(std::memory_order_relaxed) != start) spin_pause();
    cons_.pub.store(start + k, std::memory_order_release);
    if (stats_) stats_->on_pop(k, avail_hint(start));
    return k;
  }

  /// Any-consumer single pop. Returns nullopt when the link is empty.
  std::optional<T> try_pop() {
    T value;
    if (try_pop_batch(&value, 1) != 1) return std::nullopt;
    return value;
  }

  /// Approximate occupancy (published, unconsumed entries). Racy by nature;
  /// exact only when both sides are quiescent.
  std::size_t size_approx() const {
    const std::uint64_t consumed = cons_.pub.load(std::memory_order_acquire);
    const std::uint64_t published = prod_.pub.load(std::memory_order_acquire);
    return static_cast<std::size_t>(published - consumed);
  }

  bool empty_approx() const { return size_approx() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  static void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  std::size_t avail_hint(std::uint64_t start) const {
    return static_cast<std::size_t>(
        prod_.pub.load(std::memory_order_relaxed) - start);
  }

  // Each counter owns a full cache line: producers ping-pong the producer
  // pair among themselves and consumers the consumer pair, but neither side
  // drags the other's lines around on its fast path (claim CAS + fill).
  struct alignas(kCacheLine) Side {
    std::atomic<std::uint64_t> claim{0};
    char pad_[kCacheLine - sizeof(std::atomic<std::uint64_t>)];
    std::atomic<std::uint64_t> pub{0};
  };
  static_assert(sizeof(Side) == 2 * kCacheLine,
                "claim and publish counters must own one cache line each");

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;
  obs::RingStats* stats_ = nullptr;  // optional; single-threaded use only

  Side prod_;
  mutable Side cons_;
};

}  // namespace lvrm::queue
