// mc_ring.hpp — MCRingBuffer-style batched-index SPSC ring.
//
// This is the thesis' reference [24]: Lee, Bu & Chandranmenon, "A Lock-Free,
// Cache-Efficient Multi-Core Synchronization Mechanism for Line-Rate Network
// Traffic Monitoring" (IPDPS'10) — by the thesis' own supervisor.
//
// MCRingBuffer reduces cache-line bouncing over a Lamport ring in two ways:
//   * control variables are grouped by owner on separate cache lines (as in
//     SpscRing), and
//   * the shared indices are only published every `batch` operations; in
//     between, each endpoint works against a private snapshot of the other's
//     index. A producer therefore invalidates the consumer's cached copy of
//     `tail` once per batch rather than once per element.
//
// The visible cost: up to batch-1 pushed elements may be momentarily
// invisible to the consumer until the producer publishes (flush() forces
// publication, used at shutdown/idle).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "obs/ring_stats.hpp"   // header-only; no link dependency
#include "queue/spsc_ring.hpp"  // kCacheLine

namespace lvrm::queue {

template <typename T>
class McRingBuffer {
 public:
  explicit McRingBuffer(std::size_t capacity, std::size_t batch = 8) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    batch_ = batch < 1 ? 1 : batch;
    slots_ = std::make_unique<T[]>(cap);
  }

  McRingBuffer(const McRingBuffer&) = delete;
  McRingBuffer& operator=(const McRingBuffer&) = delete;

  /// Attaches an optional telemetry block (DESIGN.md §10). Must be called
  /// before the endpoints start; unattached rings pay one predicted-
  /// not-taken branch per operation and touch no extra cache line.
  void attach_stats(obs::RingStats* stats) { stats_ = stats; }

  bool try_push(T value) {
    // Check against the private snapshot first; refresh it from the shared
    // head only when the snapshot says "full" (one expensive read amortized
    // over many pushes).
    if (prod_.local_tail - prod_.head_snapshot >= capacity_) {
      prod_.head_snapshot = head_.value.load(std::memory_order_acquire);
      if (prod_.local_tail - prod_.head_snapshot >= capacity_) {
        if (stats_) stats_->on_push_fail(1);
        return false;
      }
    }
    slots_[prod_.local_tail & mask_] = std::move(value);
    ++prod_.local_tail;
    if (prod_.local_tail - prod_.published_tail >= batch_) publish_tail();
    if (stats_) stats_->on_push(1);
    return true;
  }

  std::optional<T> try_pop() {
    if (cons_.local_head == cons_.tail_snapshot) {
      cons_.tail_snapshot = tail_.value.load(std::memory_order_acquire);
      if (cons_.local_head == cons_.tail_snapshot) return std::nullopt;
    }
    T value = std::move(slots_[cons_.local_head & mask_]);
    const std::uint64_t depth = cons_.tail_snapshot - cons_.local_head;
    ++cons_.local_head;
    if (cons_.local_head - cons_.published_head >= batch_) publish_head();
    if (stats_) stats_->on_pop(1, depth);
    return value;
  }

  /// Producer-side batch push: up to `n` items from `items[0..n)` in FIFO
  /// order; returns the number accepted. Publishes the shared tail exactly
  /// once on return (a batch is a natural publication boundary), so the
  /// whole burst becomes visible to the consumer atomically.
  std::size_t try_push_batch(T* items, std::size_t n) {
    std::uint64_t free = capacity_ - (prod_.local_tail - prod_.head_snapshot);
    if (free < n) {
      prod_.head_snapshot = head_.value.load(std::memory_order_acquire);
      free = capacity_ - (prod_.local_tail - prod_.head_snapshot);
    }
    const std::size_t k =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, free));
    for (std::size_t i = 0; i < k; ++i)
      slots_[(prod_.local_tail + i) & mask_] = std::move(items[i]);
    prod_.local_tail += k;
    if (k > 0) publish_tail();
    if (stats_) {
      if (k > 0) stats_->on_push(k);
      if (k < n) stats_->on_push_fail(n - k);
    }
    return k;
  }

  /// Consumer-side batch pop: up to `n` items into `out[0..n)`; returns the
  /// number taken. Releases the consumed slots to the producer exactly once
  /// on return.
  std::size_t try_pop_batch(T* out, std::size_t n) {
    std::uint64_t avail = cons_.tail_snapshot - cons_.local_head;
    if (avail < n) {
      cons_.tail_snapshot = tail_.value.load(std::memory_order_acquire);
      avail = cons_.tail_snapshot - cons_.local_head;
    }
    const std::size_t k =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, avail));
    for (std::size_t i = 0; i < k; ++i)
      out[i] = std::move(slots_[(cons_.local_head + i) & mask_]);
    cons_.local_head += k;
    if (k > 0) publish_head();
    if (stats_ && k > 0) stats_->on_pop(k, avail);
    return k;
  }

  /// Producer-side: make all pushed elements visible now (idle/shutdown).
  void flush() { publish_tail(); }
  /// Consumer-side: release all consumed slots to the producer now.
  void flush_consumer() { publish_head(); }

  std::size_t capacity() const { return capacity_; }
  std::size_t batch() const { return batch_; }

 private:
  void publish_tail() {
    prod_.published_tail = prod_.local_tail;
    tail_.value.store(prod_.local_tail, std::memory_order_release);
  }
  void publish_head() {
    cons_.published_head = cons_.local_head;
    head_.value.store(cons_.local_head, std::memory_order_release);
  }

  // Owner-grouped control blocks, each padded to exactly one cache line
  // (MCRingBuffer's "control variables grouped by owner"; the static_asserts
  // keep the separation from silently regressing under refactoring).
  struct alignas(kCacheLine) SharedIndex {
    std::atomic<std::uint64_t> value{0};
  };
  struct alignas(kCacheLine) ProducerPrivate {
    std::uint64_t local_tail = 0;
    std::uint64_t published_tail = 0;
    std::uint64_t head_snapshot = 0;
  };
  struct alignas(kCacheLine) ConsumerPrivate {
    std::uint64_t local_head = 0;
    std::uint64_t published_head = 0;
    std::uint64_t tail_snapshot = 0;
  };
  static_assert(sizeof(SharedIndex) == kCacheLine &&
                    alignof(SharedIndex) == kCacheLine,
                "each shared index must own exactly one cache line");
  static_assert(sizeof(ProducerPrivate) == kCacheLine &&
                    alignof(ProducerPrivate) == kCacheLine,
                "producer-private block must own exactly one cache line");
  static_assert(sizeof(ConsumerPrivate) == kCacheLine &&
                    alignof(ConsumerPrivate) == kCacheLine,
                "consumer-private block must own exactly one cache line");

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t batch_ = 1;
  std::unique_ptr<T[]> slots_;
  obs::RingStats* stats_ = nullptr;  // optional; set before use, then const

  SharedIndex head_;  // consumer-owned
  SharedIndex tail_;  // producer-owned
  ProducerPrivate prod_;
  ConsumerPrivate cons_;
};

}  // namespace lvrm::queue
