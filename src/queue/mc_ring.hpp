// mc_ring.hpp — MCRingBuffer-style batched-index SPSC ring.
//
// This is the thesis' reference [24]: Lee, Bu & Chandranmenon, "A Lock-Free,
// Cache-Efficient Multi-Core Synchronization Mechanism for Line-Rate Network
// Traffic Monitoring" (IPDPS'10) — by the thesis' own supervisor.
//
// MCRingBuffer reduces cache-line bouncing over a Lamport ring in two ways:
//   * control variables are grouped by owner on separate cache lines (as in
//     SpscRing), and
//   * the shared indices are only published every `batch` operations; in
//     between, each endpoint works against a private snapshot of the other's
//     index. A producer therefore invalidates the consumer's cached copy of
//     `tail` once per batch rather than once per element.
//
// The visible cost: up to batch-1 pushed elements may be momentarily
// invisible to the consumer until the producer publishes (flush() forces
// publication, used at shutdown/idle).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "obs/ring_stats.hpp"   // header-only; no link dependency
#include "queue/spsc_ring.hpp"  // kCacheLine

namespace lvrm::queue {

template <typename T>
class McRingBuffer {
 public:
  explicit McRingBuffer(std::size_t capacity, std::size_t batch = 8) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    batch_ = batch < 1 ? 1 : batch;
    slots_ = std::make_unique<T[]>(cap);
  }

  McRingBuffer(const McRingBuffer&) = delete;
  McRingBuffer& operator=(const McRingBuffer&) = delete;

  /// Attaches an optional telemetry block (DESIGN.md §10). Must be called
  /// before the endpoints start; unattached rings pay one predicted-
  /// not-taken branch per operation and touch no extra cache line.
  void attach_stats(obs::RingStats* stats) { stats_ = stats; }

  bool try_push(T value) {
    // Check against the private snapshot first; refresh it from the shared
    // head only when the snapshot says "full" (one expensive read amortized
    // over many pushes).
    if (local_tail_ - head_snapshot_ >= capacity_) {
      head_snapshot_ = head_.load(std::memory_order_acquire);
      if (local_tail_ - head_snapshot_ >= capacity_) {
        if (stats_) stats_->on_push_fail(1);
        return false;
      }
    }
    slots_[local_tail_ & mask_] = std::move(value);
    ++local_tail_;
    if (local_tail_ - published_tail_ >= batch_) publish_tail();
    if (stats_) stats_->on_push(1);
    return true;
  }

  std::optional<T> try_pop() {
    if (local_head_ == tail_snapshot_) {
      tail_snapshot_ = tail_.load(std::memory_order_acquire);
      if (local_head_ == tail_snapshot_) return std::nullopt;
    }
    T value = std::move(slots_[local_head_ & mask_]);
    const std::uint64_t depth = tail_snapshot_ - local_head_;
    ++local_head_;
    if (local_head_ - published_head_ >= batch_) publish_head();
    if (stats_) stats_->on_pop(1, depth);
    return value;
  }

  /// Producer-side batch push: up to `n` items from `items[0..n)` in FIFO
  /// order; returns the number accepted. Publishes the shared tail exactly
  /// once on return (a batch is a natural publication boundary), so the
  /// whole burst becomes visible to the consumer atomically.
  std::size_t try_push_batch(T* items, std::size_t n) {
    std::uint64_t free = capacity_ - (local_tail_ - head_snapshot_);
    if (free < n) {
      head_snapshot_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (local_tail_ - head_snapshot_);
    }
    const std::size_t k =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, free));
    for (std::size_t i = 0; i < k; ++i)
      slots_[(local_tail_ + i) & mask_] = std::move(items[i]);
    local_tail_ += k;
    if (k > 0) publish_tail();
    if (stats_) {
      if (k > 0) stats_->on_push(k);
      if (k < n) stats_->on_push_fail(n - k);
    }
    return k;
  }

  /// Consumer-side batch pop: up to `n` items into `out[0..n)`; returns the
  /// number taken. Releases the consumed slots to the producer exactly once
  /// on return.
  std::size_t try_pop_batch(T* out, std::size_t n) {
    std::uint64_t avail = tail_snapshot_ - local_head_;
    if (avail < n) {
      tail_snapshot_ = tail_.load(std::memory_order_acquire);
      avail = tail_snapshot_ - local_head_;
    }
    const std::size_t k =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, avail));
    for (std::size_t i = 0; i < k; ++i)
      out[i] = std::move(slots_[(local_head_ + i) & mask_]);
    local_head_ += k;
    if (k > 0) publish_head();
    if (stats_ && k > 0) stats_->on_pop(k, avail);
    return k;
  }

  /// Producer-side: make all pushed elements visible now (idle/shutdown).
  void flush() { publish_tail(); }
  /// Consumer-side: release all consumed slots to the producer now.
  void flush_consumer() { publish_head(); }

  std::size_t capacity() const { return capacity_; }
  std::size_t batch() const { return batch_; }

 private:
  void publish_tail() {
    published_tail_ = local_tail_;
    tail_.store(local_tail_, std::memory_order_release);
  }
  void publish_head() {
    published_head_ = local_head_;
    head_.store(local_head_, std::memory_order_release);
  }

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t batch_ = 1;
  std::unique_ptr<T[]> slots_;
  obs::RingStats* stats_ = nullptr;  // optional; set before use, then const

  // Shared, owner-segregated control variables.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // consumer-owned
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // producer-owned

  // Producer-private working set.
  alignas(kCacheLine) std::uint64_t local_tail_ = 0;
  std::uint64_t published_tail_ = 0;
  std::uint64_t head_snapshot_ = 0;

  // Consumer-private working set.
  alignas(kCacheLine) std::uint64_t local_head_ = 0;
  std::uint64_t published_head_ = 0;
  std::uint64_t tail_snapshot_ = 0;
};

}  // namespace lvrm::queue
