#include "lvrm/socket_adapter.hpp"

#include <algorithm>

#include "sim/costs.hpp"

namespace lvrm {

namespace costs = sim::costs;

namespace {
Nanos scaled(Nanos fixed, double per_byte, int wire_bytes) {
  return fixed + static_cast<Nanos>(per_byte * wire_bytes);
}
}  // namespace

Nanos RawSocketAdapter::recv_cost(const net::FrameMeta& f) const {
  return scaled(costs::kRawSocketRecv, costs::kRawSocketPerByte, f.wire_bytes);
}
Nanos RawSocketAdapter::send_cost(const net::FrameMeta& f) const {
  return scaled(costs::kRawSocketSend, costs::kRawSocketPerByte, f.wire_bytes);
}
std::size_t RawSocketAdapter::ring_capacity() const {
  return costs::kRawSocketRing;
}

Nanos PfRingAdapter::recv_cost(const net::FrameMeta& f) const {
  return scaled(costs::kPfRingRecv, costs::kPfRingPerByte, f.wire_bytes);
}
Nanos PfRingAdapter::send_cost(const net::FrameMeta& f) const {
  return scaled(costs::kPfRingSend, costs::kPfRingPerByte, f.wire_bytes);
}
std::size_t PfRingAdapter::ring_capacity() const { return costs::kPfRingRing; }

Nanos MemoryAdapter::recv_cost(const net::FrameMeta& f) const {
  return scaled(costs::kMemoryRecv, costs::kMemoryPerByte, f.wire_bytes);
}
Nanos MemoryAdapter::send_cost(const net::FrameMeta& f) const {
  return scaled(costs::kMemorySend, 0.0, f.wire_bytes);
}
std::size_t MemoryAdapter::ring_capacity() const { return costs::kMemoryRing; }

std::unique_ptr<SocketAdapter> make_adapter(AdapterKind kind) {
  switch (kind) {
    case AdapterKind::kRawSocket:
      return std::make_unique<RawSocketAdapter>();
    case AdapterKind::kPfRing:
      return std::make_unique<PfRingAdapter>();
    case AdapterKind::kMemory:
      return std::make_unique<MemoryAdapter>();
  }
  return nullptr;
}

std::vector<std::unique_ptr<SocketAdapter>> make_adapters(AdapterKind kind,
                                                          int count) {
  std::vector<std::unique_ptr<SocketAdapter>> out;
  out.reserve(static_cast<std::size_t>(count > 0 ? count : 1));
  for (int i = 0; i < std::max(1, count); ++i) out.push_back(make_adapter(kind));
  return out;
}

}  // namespace lvrm
