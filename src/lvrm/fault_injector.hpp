// fault_injector.hpp — scriptable fault injection against a running system.
//
// Generalizes the original crash-only `LvrmSystem::inject_vri_crash` into a
// small fault-injection harness for tests and the recovery benches. Five
// fault kinds (types.hpp FaultKind):
//
//   * kCrash       — the VRI process dies; its queues go stale until reaped.
//   * kHang        — the process stalls (deadlock, livelock, SIGSTOP) but
//                    stays alive: without the health monitor it is *never*
//                    detected, since waitpid() has nothing to reap.
//   * kSlowdown    — the incarnation's per-frame service cost is multiplied
//                    by `magnitude` (a sick process: leaking, swapping,
//                    contending); feeds the fail-slow watchdog.
//   * kControlLoss — control events relayed *to* this VRI are dropped with
//                    probability `magnitude` (lossy control path).
//   * kOverloadBurst — a synthetic flash crowd: `magnitude` frames/s pushed
//                    into the VR's ingress for `duration` (self-limiting;
//                    exercises the DESIGN.md §13 degradation ladder).
//
// Faults are injected immediately or scheduled at an absolute virtual time;
// `duration > 0` makes hang/slowdown/control-loss transient (the fault
// clears by itself — a GC pause rather than a deadlock). Crashes are always
// permanent: recovery is the supervisor's job, not the corpse's.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "lvrm/types.hpp"
#include "sim/simulator.hpp"

namespace lvrm {

class LvrmSystem;

struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  int vr = 0;
  int vri = 0;
  Nanos at = 0;            // absolute injection time (schedule())
  Nanos duration = 0;      // 0 = permanent; ignored for kCrash
  double magnitude = 4.0;  // slowdown multiplier / control-loss probability
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, LvrmSystem& system)
      : sim_(sim), system_(system) {}

  /// Applies the fault right now (spec.at is ignored).
  void inject(const FaultSpec& spec);

  /// Schedules the fault at virtual time `spec.at` (and, for transient
  /// faults, its clearing at `spec.at + spec.duration`).
  void schedule(const FaultSpec& spec);

  /// Every fault injected so far, in injection order.
  const std::vector<FaultSpec>& log() const { return log_; }

 private:
  void apply(const FaultSpec& spec);
  void clear(const FaultSpec& spec);

  sim::Simulator& sim_;
  LvrmSystem& system_;
  std::vector<FaultSpec> log_;
};

}  // namespace lvrm
