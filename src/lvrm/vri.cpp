#include "lvrm/vri.hpp"

#include <sstream>
#include <stdexcept>

#include "net/headers.hpp"
#include "sim/costs.hpp"
#include "vr/factory.hpp"

namespace lvrm {

namespace costs = sim::costs;

// --- CppVr ---------------------------------------------------------------------

CppVr::CppVr(std::string route_map) : route_map_(std::move(route_map)) {
  for (const auto& entry : route::parse_route_map(route_map_))
    table_.insert(entry);
}

bool CppVr::process(net::FrameMeta& frame) {
  const auto route = table_.lookup(frame.dst_ip);
  if (!route) return false;
  frame.output_if = route->output_if;
  return true;
}

Nanos CppVr::process_cost(const net::FrameMeta& frame) const {
  return costs::kCppVrForward +
         static_cast<Nanos>(costs::kCppVrPerByte * frame.wire_bytes);
}

bool CppVr::apply_route_update(const route::RouteUpdate& update) {
  if (update.add) {
    table_.insert(update.entry);
    return true;
  }
  return table_.remove(update.entry.prefix);
}

std::unique_ptr<VirtualRouter> CppVr::clone() const {
  return std::make_unique<CppVr>(route_map_);
}

// --- ClickVr -------------------------------------------------------------------

namespace {

/// Generates the minimal-forwarding Click script for a set of routes.
std::string generate_click_script(const std::vector<route::RouteEntry>& routes) {
  // Collect the set of output interfaces and build one ToHost per interface.
  int max_if = 0;
  for (const auto& r : routes)
    if (r.output_if > max_if) max_if = r.output_if;

  std::ostringstream os;
  os << "// auto-generated minimal IP forwarder (thesis Sec 3.8 Click VR)\n";
  os << "in :: FromHost;\n";
  std::ostringstream route_args;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (i) route_args << ", ";
    route_args << net::format_ipv4(routes[i].prefix.network) << '/'
               << routes[i].prefix.length << ' ' << routes[i].output_if;
  }
  os << "rt :: LookupIPRoute(" << route_args.str() << ");\n";
  os << "in -> Paint(0) -> Strip(14) -> CheckIPHeader -> GetIPAddress(16) "
        "-> Counter -> rt;\n";
  for (int i = 0; i <= max_if; ++i) {
    os << "rt[" << i << "] -> EtherEncap(0x0800, 02:00:00:00:00:fe, "
       << "02:00:00:00:00:0" << (i % 10) << ") -> out" << i << " :: ToHost("
       << i << ");\n";
  }
  return os.str();
}

}  // namespace

ClickVr::ClickVr(std::string route_map) : ClickVr(std::move(route_map), {}) {}

ClickVr::ClickVr(std::string route_map, std::string click_script)
    : route_map_(std::move(route_map)) {
  const auto routes = route::parse_route_map(route_map_);
  for (const auto& entry : routes) fallback_table_.insert(entry);
  script_ = click_script.empty() ? generate_click_script(routes)
                                 : std::move(click_script);
  std::string error;
  if (!router_.configure(script_, error))
    throw std::runtime_error("ClickVr: bad config: " + error);
  if (router_.find_as<click::FromHost>("in") == nullptr)
    throw std::runtime_error(
        "ClickVr: config must declare a FromHost named 'in'");
  // Capture forwarded packets' output interface from every ToHost.
  bool has_sink = false;
  for (const auto& name : router_.element_names()) {
    if (auto* sink = router_.find_as<click::ToHost>(name)) {
      sink->set_sink([this](click::PacketPtr p) { last_output_ = p->output_if; });
      has_sink = true;
    }
  }
  if (!has_sink)
    throw std::runtime_error("ClickVr: config needs at least one ToHost");
}

bool ClickVr::process(net::FrameMeta& frame) {
  if (!use_graph_) {
    const auto route = fallback_table_.lookup(frame.dst_ip);
    if (!route) return false;
    frame.output_if = route->output_if;
    return true;
  }
  // Materialize a real frame and push it through the element graph.
  const std::size_t payload =
      frame.wire_bytes > 90 ? static_cast<std::size_t>(frame.wire_bytes) -
                                  net::kWireOverheadBytes -
                                  net::kEthernetHeaderLen -
                                  net::kIpv4HeaderLen - net::kUdpHeaderLen
                            : 18;
  auto buf = net::build_udp_frame(net::MacAddr::from_id(1),
                                  net::MacAddr::from_id(2), frame.src_ip,
                                  frame.dst_ip, frame.src_port, frame.dst_port,
                                  payload);
  ++graph_frames_;
  last_output_ = -1;
  router_.push_input("in", click::Packet::make(std::move(buf)));
  router_.run_tasks();
  if (last_output_ < 0) return false;
  frame.output_if = last_output_;
  return true;
}

Nanos ClickVr::process_cost(const net::FrameMeta& frame) const {
  return costs::kClickVrForward +
         static_cast<Nanos>(costs::kClickVrPerByte * frame.wire_bytes);
}

Nanos ClickVr::pipeline_latency() const {
  return costs::kClickPipelineLatency;
}

bool ClickVr::apply_route_update(const route::RouteUpdate& update) {
  // Keep the fallback LPM table and the element graph's route table in
  // lockstep so both processing paths stay equivalent.
  auto* rt = router_.find_as<click::LookupIPRoute>("rt");
  if (update.add) {
    if (rt && !rt->add_route(update.entry)) return false;  // unknown port
    fallback_table_.insert(update.entry);
    return true;
  }
  const bool in_fallback = fallback_table_.remove(update.entry.prefix);
  if (rt) rt->remove_route(update.entry.prefix);
  return in_fallback;
}

std::unique_ptr<VirtualRouter> ClickVr::clone() const {
  auto copy = std::make_unique<ClickVr>(route_map_, script_);
  copy->set_use_graph(use_graph_);
  return copy;
}

std::unique_ptr<VirtualRouter> make_vr(VrKind kind,
                                       const std::string& route_map) {
  switch (kind) {
    case VrKind::kCpp:
      return std::make_unique<CppVr>(route_map);
    case VrKind::kClick:
      return std::make_unique<ClickVr>(route_map);
    case VrKind::kNat:
    case VrKind::kFirewall:
    case VrKind::kRateLimit:
      // Stateful kinds need their VrConfig parameters; callers with only a
      // kind get them at defaults via the factory seam.
      {
        VrConfig cfg;
        cfg.kind = kind;
        return make_configured_vr(cfg, route_map);
      }
  }
  return nullptr;
}

std::string default_route_map() {
  return "10.1.0.0/16 0\n10.2.0.0/16 1\n";
}

}  // namespace lvrm
