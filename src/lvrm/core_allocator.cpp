#include "lvrm/core_allocator.hpp"

namespace lvrm {

namespace {

/// Shared Fig 3.2 comparison given a per-VRI capacity estimate.
AllocDecision threshold_decision(const VrAllocView& vr, double per_vri_fps,
                                 double hysteresis) {
  if (per_vri_fps <= 0.0) return AllocDecision::kHold;
  const int c = vr.active_vris;
  const double arrival = vr.arrival_rate_fps;
  // "if arrival rate <= threshold(service rate w/ 1 less VRI)": c-1 VRIs
  // suffice, so release a core (never below one VRI).
  if (c > 1 && arrival <= per_vri_fps * (c - 1) * hysteresis)
    return AllocDecision::kDestroy;
  // "else if threshold(service rate) <= arrival rate": saturated, add one.
  if (arrival >= per_vri_fps * c) return AllocDecision::kCreate;
  return AllocDecision::kHold;
}

}  // namespace

NumaTier numa_tier_of(const sim::CpuTopology& topo, sim::CoreId anchor,
                      sim::CoreId core) {
  if (anchor == sim::kNoCore || core == sim::kNoCore) return NumaTier::kNone;
  if (topo.siblings(core, anchor)) return NumaTier::kSameSocket;
  if (topo.same_machine(core, anchor)) return NumaTier::kSameMachine;
  return NumaTier::kRemote;
}

NumaPick pick_numa_core(const sim::CpuTopology& topo,
                        const std::vector<bool>& used, sim::CoreId anchor) {
  // Three passes, widening the NUMA distance each time. Within a tier the
  // scan is ascending core id, matching the single-machine sibling order
  // the paper's experiments were calibrated against.
  const NumaTier tiers[] = {NumaTier::kSameSocket, NumaTier::kSameMachine,
                            NumaTier::kRemote};
  for (NumaTier tier : tiers) {
    for (sim::CoreId c = 0; c < topo.total_cores(); ++c) {
      if (c == anchor || used[static_cast<std::size_t>(c)]) continue;
      if (numa_tier_of(topo, anchor, c) == tier) return NumaPick{c, tier};
    }
  }
  return NumaPick{};
}

AllocDecision DynamicFixedThresholdAllocator::decide(
    const VrAllocView& vr) const {
  return threshold_decision(vr, per_vri_fps_, hysteresis_);
}

AllocDecision DynamicDynamicThresholdAllocator::decide(
    const VrAllocView& vr) const {
  return threshold_decision(vr, vr.service_rate_per_vri, hysteresis_);
}

std::unique_ptr<CoreAllocator> make_allocator(AllocatorKind kind,
                                              double per_vri_capacity_fps,
                                              double destroy_hysteresis) {
  switch (kind) {
    case AllocatorKind::kFixed:
      return std::make_unique<FixedAllocator>();
    case AllocatorKind::kDynamicFixedThreshold:
      return std::make_unique<DynamicFixedThresholdAllocator>(
          per_vri_capacity_fps, destroy_hysteresis);
    case AllocatorKind::kDynamicDynamicThreshold:
      return std::make_unique<DynamicDynamicThresholdAllocator>(
          destroy_hysteresis);
  }
  return nullptr;
}

}  // namespace lvrm
