// health_monitor.hpp — per-VRI liveness and fail-slow detection.
//
// The Sec 3.2 allocation pass is LVRM's only stock supervision mechanism: a
// dead VRI is noticed at the next once-per-second pass, and a *fail-slow*
// VRI — hung or degraded but with a live process — is never noticed at all.
// This monitor closes that gap. The LVRM poll loop feeds it heartbeat probes
// (cheap reads of each VRI's progress counter and queue backlog from shared
// memory) on its own `probe_period`, decoupled from the allocation period,
// and the monitor classifies each VRI:
//
//   * kDead      — the process is gone (waitpid()/kill(pid,0) would fail);
//                  detected at the first probe after death.
//   * kHung      — the process is alive but its progress counter has not
//                  advanced for `heartbeat_timeout` while work is pending in
//                  its data queue (stuck in a loop, deadlocked, SIGSTOPped).
//   * kFailSlow  — the service-rate watchdog: its measured departure rate
//                  has stayed below `fail_slow_fraction` of its siblings'
//                  median for `fail_slow_grace` consecutive probes.
//
// The monitor is pure bookkeeping — it owns no queues or processes — so it
// unit-tests in isolation; LvrmSystem turns its verdicts into quarantine,
// stranded-frame re-dispatch and state-consistent respawn.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "lvrm/config.hpp"
#include "lvrm/types.hpp"

namespace lvrm {

/// One heartbeat sample for one VRI, taken by the LVRM poll loop.
struct VriProbe {
  int vri = -1;
  bool reachable = true;            // process answers (not crashed)
  std::uint64_t progress = 0;       // monotone served-items counter
  std::size_t backlog = 0;          // frames pending in its data queue
  double departure_rate_fps = 0.0;  // measured service rate; 0 = unknown
};

/// A VRI the monitor wants recovered, with how long it had been stalled
/// (progress-counter age) when the verdict fired.
struct HealthVerdict {
  int vri = -1;
  VriHealth state = VriHealth::kHealthy;
  Nanos stalled_for = 0;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config) : config_(config) {}

  /// Feeds one probe pass over the active VRIs of VR `vr`. Returns the VRIs
  /// needing recovery (dead, hung or fail-slow), at most one verdict each.
  std::vector<HealthVerdict> probe(int vr, std::span<const VriProbe> probes,
                                   Nanos now);

  /// Drops all state about a VRI (it was destroyed or respawned; the next
  /// probe of that slot starts a fresh incarnation's history).
  void forget(int vr, int vri);

  /// True while a VRI is inside the fail-slow grace window (one or more
  /// strikes but no verdict yet). The dispatcher steers around suspects.
  bool is_suspect(int vr, int vri) const;

  std::uint64_t dead_detected() const { return dead_; }
  std::uint64_t hung_detected() const { return hung_; }
  std::uint64_t fail_slow_detected() const { return fail_slow_; }

  const HealthConfig& config() const { return config_; }

 private:
  struct Record {
    std::uint64_t last_progress = 0;
    Nanos last_change = 0;  // when the progress counter last advanced
    int slow_strikes = 0;
    bool seen = false;
  };

  static std::uint64_t key(int vr, int vri) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(vr)) << 32) |
           static_cast<std::uint32_t>(vri);
  }

  HealthConfig config_;
  std::unordered_map<std::uint64_t, Record> records_;
  std::uint64_t dead_ = 0;
  std::uint64_t hung_ = 0;
  std::uint64_t fail_slow_ = 0;
};

}  // namespace lvrm
