#include "lvrm/load_estimator.hpp"

namespace lvrm {

std::unique_ptr<LoadEstimator> make_estimator(EstimatorKind kind,
                                              double weight) {
  switch (kind) {
    case EstimatorKind::kQueueLength:
      return std::make_unique<QueueLengthEstimator>(weight);
    case EstimatorKind::kArrivalTime:
      return std::make_unique<ArrivalTimeEstimator>(weight);
  }
  return nullptr;
}

}  // namespace lvrm
