// system.hpp — LvrmSystem: the assembled load-aware virtual router monitor.
//
// This wires every Chapter 3 component into the Fig 3.1 hierarchy on top of
// the simulated gateway:
//
//   socket adapter -> [LVRM poll loop on its pinned core]
//        |   classify by source IP -> VR monitor (core allocation, Fig 3.2)
//        |   -> VRI monitor (load balancing, Fig 3.3)
//        |   -> VRI adapter (load estimation, Fig 3.4) -> data queue
//        v
//   [VRI poll loops, one per allocated core] -> outgoing data queues
//        -> LVRM TX -> socket adapter -> egress
//
// Control queues outrank data queues at both LVRM and the VRIs (Sec 2.1).
// Shared-memory segment ids are allocated per queue through ShmArena,
// following the shmget()-identifier protocol of Sec 3.8.
//
// With `LvrmConfig::dispatch_shards` > 1 the dispatch plane itself is
// replicated (DESIGN.md §11): N dispatcher shards, each with its own socket
// adapter, RX ring, poll loop on its own core, and per-VR flow table +
// balancer. An RSS-style hash of the 5-tuple steers every frame of a flow
// to one shard at ingress, so flow affinity — and therefore per-flow frame
// ordering — is preserved end to end without any cross-shard locking.
// Shard 0 doubles as the management plane (core allocation, health,
// telemetry snapshots run off its sink); with one shard the system is
// bit-identical to the paper's single-dispatcher gateway.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "lvrm/config.hpp"
#include "lvrm/core_allocator.hpp"
#include "lvrm/health_monitor.hpp"
#include "lvrm/load_balancer.hpp"
#include "lvrm/load_estimator.hpp"
#include "lvrm/socket_adapter.hpp"
#include "lvrm/vri.hpp"
#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "queue/shm_arena.hpp"
#include "sim/core.hpp"
#include "sim/poll_server.hpp"
#include "sim/queue.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace lvrm {

/// One entry of the allocation log (drives Figs 4.10-4.13).
struct AllocationEvent {
  Nanos time = 0;
  int vr = -1;
  bool create = false;       // false = deallocation
  Nanos reaction = 0;        // begin-iterate .. end-create/destroy (Fig 4.11)
  int vr_vris_after = 0;     // VRIs of this VR after the action
  int total_vris_after = 0;  // VRIs across all VRs after the action
};

/// One reset-free VRI drain (DESIGN.md §13; drives Exp 6). Unlike the
/// crash path, the drained incarnation stays warm: its router keeps the
/// applied route state, so a later activation needs no fork and no
/// route-log replay.
struct DrainEvent {
  Nanos time = 0;
  int vr = -1;
  int vri = -1;
  DrainCause cause = DrainCause::kDecommission;
  std::size_t migrated = 0;       // queued frames moved to sibling VRIs
  std::size_t dropped = 0;        // overflow: the survivors were saturated
  std::size_t flows_evicted = 0;  // flow pins released for re-balancing
  /// Worst sibling's control-handoff apply latency (Charon-style ownership
  /// transfer over the control rings); 0 until the slowest sibling acks.
  Nanos handoff_latency = 0;
};

/// One health-monitor recovery action (drives the MTTR bench).
struct RecoveryEvent {
  Nanos time = 0;  // detection time (the health pass that fired the verdict)
  int vr = -1;
  int vri = -1;
  VriHealth reason = VriHealth::kHealthy;
  Nanos stalled_for = 0;        // progress-stall age at detection
  std::size_t stranded = 0;     // frames found in the dead incarnation's queue
  std::size_t redispatched = 0; // of those, rescued onto surviving VRIs
  bool respawned = false;       // a replacement incarnation was started
};

class LvrmSystem {
 public:
  LvrmSystem(sim::Simulator& sim, const sim::CpuTopology& topo,
             LvrmConfig config);
  ~LvrmSystem();
  LvrmSystem(const LvrmSystem&) = delete;
  LvrmSystem& operator=(const LvrmSystem&) = delete;

  /// Registers a VR before start(). Returns the VR id.
  int add_vr(VrConfig config);

  /// Activates initial VRIs and starts the LVRM poll loop.
  void start();

  /// Frame arrival at the gateway's input (from the NIC ring / RAM trace).
  /// Returns false when the adapter's RX ring is full (tail drop).
  bool ingress(net::FrameMeta frame);

  /// Invoked (at the TX completion time) for every forwarded frame.
  void set_egress(std::function<void(net::FrameMeta&&)> egress) {
    egress_ = std::move(egress);
  }

  /// Sends a control event from one VRI of `vr` to another through the
  /// control queues; `on_delivered` receives the end-to-end latency when the
  /// destination VRI consumes it (Exp 1e). `kind` selects the consumption
  /// cost at the destination: kControl pays the full control-event cost,
  /// kStateDelta pays only the §16 delta-apply cost — state deltas ride the
  /// same rings but arrive orders of magnitude more often.
  void send_control(int vr, int src_vri, int dst_vri, std::size_t bytes,
                    std::function<void(Nanos)> on_delivered,
                    net::FrameKind kind = net::FrameKind::kControl);

  /// Failure injection: the VRI process dies (as if it crashed or was
  /// OOM-killed). LVRM only notices at its next allocation pass — the same
  /// once-per-period loop that runs Fig 3.2 — which reaps the corpse, frees
  /// its core, evicts its flow pins, and (fixed allocator) respawns a
  /// replacement; the dynamic allocators regrow capacity on their own.
  /// Frames queued at the dead VRI are lost, as with Fig 3.2's destroy.
  void inject_vri_crash(int vr, int vri);

  /// Failure injection (fail-slow family; see fault_injector.hpp): the VRI
  /// process stalls but stays alive — waitpid() never reaps it, so only the
  /// health monitor's heartbeat can notice. clear_vri_hang models a
  /// transient stall (e.g. a long GC pause) resolving on its own.
  void inject_vri_hang(int vr, int vri);
  void clear_vri_hang(int vr, int vri);

  /// Multiplies the VRI incarnation's per-frame service cost (a sick
  /// process); 1.0 restores full speed. Cleared by a respawn.
  void inject_vri_slowdown(int vr, int vri, double multiplier);

  /// Control events relayed to this VRI are dropped with this probability
  /// (lossy control path); 0 restores reliability. Cleared by a respawn.
  void inject_control_loss(int vr, int vri, double drop_probability);

  /// Failure injection (FaultKind::kOverloadBurst): a synthetic flash crowd
  /// aimed at `vr` — `fps` extra frames per second pushed straight into
  /// ingress() for `duration`. The burst cycles 64 synthetic flows inside
  /// the VR's first subnet, so it competes with real traffic for the same
  /// rings, pool slots and queues the ladder protects.
  void inject_overload_burst(int vr, double fps, Nanos duration);

  /// Reset-free decommission (DESIGN.md §13): stops the VRI, migrates its
  /// queued frames and flow pins to the surviving siblings through the
  /// normal dispatch path (per-flow order preserved), and hands ownership
  /// over via control events — no frames dropped unless the survivors are
  /// saturated, no route-log replay on a later reactivation. Returns false
  /// when the slot is not active (or has crashed — a corpse cannot drain).
  bool decommission_vri(int vr, int vri);

  /// Every reset-free drain so far (allocator destroy with
  /// `overload_control.drain_on_destroy`, fail-slow quarantine, or explicit
  /// decommission_vri), in order.
  const std::vector<DrainEvent>& drain_log() const { return drain_log_; }
  /// Flow pins migrated to siblings across all drains.
  std::uint64_t flows_migrated() const { return flows_migrated_; }

  /// VRIs reaped after crashes, across all VRs.
  std::uint64_t crashed_vris_reaped() const { return crashes_reaped_; }

  /// Health-monitor recovery actions (empty unless config.health.enabled).
  const std::vector<RecoveryEvent>& recovery_log() const {
    return recovery_log_;
  }
  /// Frames rescued from dead/hung VRIs' queues and re-dispatched.
  std::uint64_t redispatched_frames() const { return redispatched_; }
  /// The health monitor, or nullptr when disabled.
  const HealthMonitor* health() const { return health_.get(); }

  /// Dynamic routing (Sec 3.7): `src_vri` of `vr` learns a route update,
  /// applies it locally, and synchronizes it to the sibling VRIs over the
  /// control queues (the Sec 2.1 routing-state sync). Inactive VRIs receive
  /// it directly so later activations start consistent. `on_synced` (may be
  /// empty) fires when the slowest sibling has applied it, with that
  /// worst-case latency.
  void broadcast_route_update(int vr, int src_vri,
                              const route::RouteUpdate& update,
                              std::function<void(Nanos)> on_synced = {});

  // --- introspection / statistics ------------------------------------------
  int vr_count() const { return static_cast<int>(vrs_.size()); }
  int active_vris(int vr) const;
  /// Core ids currently running this VR's VRIs, in activation order.
  std::vector<sim::CoreId> vri_cores(int vr) const;
  double arrival_rate_estimate(int vr) const;   // frames/s (EWMA)
  double service_rate_estimate(int vr) const;   // frames/s per VRI (measured)

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t vr_forwarded(int vr) const;
  std::uint64_t vri_forwarded(int vr, int vri) const;
  /// Tail drops across every shard's RX ring (one ring with one shard).
  std::uint64_t rx_ring_drops() const {
    std::uint64_t total = 0;
    for (const auto& sh : shards_) total += sh.rx_ring->drops();
    return total;
  }
  std::uint64_t data_queue_drops() const;
  std::uint64_t no_route_drops() const;
  /// Frames shed by the overload drop policy (documented, not silent).
  std::uint64_t shed_drops() const;
  std::uint64_t vr_shed_drops(int vr) const;

  // --- overload ladder (DESIGN.md §13) --------------------------------------
  /// The VR's current degradation-ladder level (kNormal unless
  /// `overload_control.enabled`).
  OverloadLevel overload_level(int vr) const;
  /// The VR's current per-flow sampling rate (1.0 at kNormal).
  double sample_rate(int vr) const;
  /// Frames shed by the adaptive sampling subset, per VR / total.
  std::uint64_t vr_sampled_shed(int vr) const;
  std::uint64_t sampled_shed_drops() const;
  /// Frames rejected by RX-side admission control, per VR / total.
  std::uint64_t vr_admission_rejected(int vr) const;
  std::uint64_t admission_rejected_drops() const;
  /// Frames classified to this VR after ring admission (includes frames the
  /// sampling subset later shed) — the ground truth the bias-corrected
  /// estimate reconstructs.
  std::uint64_t vr_frames_in(int vr) const;
  /// Bias-corrected offered-load estimate: every frame admitted past the
  /// sampling subset adds 1/rate, so the sum is an unbiased reconstruction
  /// of `vr_frames_in + vr_admission_rejected` whatever the ladder did.
  double vr_offered_estimate(int vr) const;

  // --- state replication (DESIGN.md §16) ------------------------------------
  // All zero unless `config.state_replication.enabled`.
  /// Frames dispatched past their flow pin by the spray path.
  std::uint64_t sprayed_frames() const { return sprayed_frames_; }
  /// Flows promoted to spraying (one per completed snapshot handshake).
  std::uint64_t spray_activations() const { return spray_activations_; }
  /// Per-frame state deltas relayed to siblings / applied at delivery.
  std::uint64_t deltas_sent() const { return deltas_sent_; }
  std::uint64_t deltas_applied() const { return deltas_applied_; }
  /// TX sequencer activity: frames parked for an earlier sequence number,
  /// holes released by a drop tombstone, and force-releases when the reorder
  /// window overflowed (the only case external order can be violated).
  std::uint64_t seq_holds() const { return seq_holds_; }
  std::uint64_t seq_gap_skips() const { return seq_gap_skips_; }
  std::uint64_t seq_window_overflows() const { return seq_window_overflows_; }
  /// Flows currently in the spray set / frames parked in sequencers.
  std::size_t spray_active_flows() const;
  std::size_t seq_held_frames() const;
  /// Frames refused by a stateful VR's admission decision (policy drops).
  std::uint64_t vr_policy_drops(int vr) const;

  /// Test/harness hook invoked once per dropped frame with its cause — the
  /// conservation check `delivered + every cause == offered` per flow
  /// class. Null (the default) costs the hot path one pointer check.
  using DropHook = std::function<void(const net::FrameMeta&, DropCause)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }
  /// The allocator's aggregate capacity estimate for this VR (frames/s).
  double capacity_estimate(int vr) const;

  const std::vector<AllocationEvent>& allocation_log() const {
    return alloc_log_;
  }

  sim::Core& core(sim::CoreId id) { return *cores_.at(static_cast<std::size_t>(id)); }
  const sim::Core& core(sim::CoreId id) const {
    return *cores_.at(static_cast<std::size_t>(id));
  }
  sim::Core& lvrm_core() { return core(config_.lvrm_core); }
  const SocketAdapter& adapter() const { return *shards_.front().adapter; }
  const LvrmConfig& config() const { return config_; }
  const queue::ShmArena& shm() const { return arena_; }
  /// The shared frame pool (descriptor mode), or nullptr when
  /// `config.descriptor_rings` is off or start() has not run.
  const net::FramePool* frame_pool() const { return pool_.get(); }
  /// Frames dropped at ingress because the frame pool was exhausted.
  std::uint64_t pool_exhausted_drops() const { return pool_exhausted_drops_; }
  /// Shard 0's dispatcher for `vr` (the only one with dispatch_shards=1).
  const Dispatcher& dispatcher(int vr) const;
  /// A specific shard's dispatcher for `vr`.
  const Dispatcher& dispatcher(int vr, int shard) const;

  // --- sharded dispatch plane (DESIGN.md §11) -------------------------------
  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// Core the given dispatcher shard's poll loop is pinned to.
  sim::CoreId shard_core(int shard) const {
    return shards_.at(static_cast<std::size_t>(shard)).core_id;
  }
  /// Frames admitted through this shard's RX ring since start.
  std::uint64_t shard_rx_admitted(int shard) const {
    return shards_.at(static_cast<std::size_t>(shard)).rx_admitted;
  }
  /// The shard the RSS-style flow hash steers this frame's 5-tuple to.
  int shard_of(const net::FrameMeta& frame) const;

  // --- MPMC fabric & work stealing (DESIGN.md §17) --------------------------
  // Ring accounting contrasts the two IPC topologies over the *same* shard
  // and VRI-slot geometry: the SPSC mesh needs one ring per (shard, VRI)
  // pair in each data direction, the fabric one MPMC ingress link per VRI
  // and one MPMC TX drain per home shard. Control rings and RX rings are
  // common to both. These are the numbers behind the `lvrm_fabric_*`
  // gauges and `bench_exp9_fabric`.
  /// Data-plane rings the SPSC mesh allocates for this geometry.
  std::size_t mesh_ring_count() const;
  /// Data-plane rings the MPMC fabric allocates for this geometry.
  std::size_t fabric_ring_count() const;
  /// Shared-memory bytes those rings pin (headroom), mesh vs fabric. The
  /// difference is the reclaimed-headroom gauge (satellite of §17).
  std::size_t mesh_ring_bytes() const;
  std::size_t fabric_ring_bytes() const;
  /// Work-stealing counters (all zero unless `work_stealing`): TX bursts an
  /// idle shard pulled from another shard's drain, ingress bursts an idle
  /// VRI pulled from an overloaded sibling, and the frames they moved.
  std::uint64_t tx_steals() const { return tx_steals_; }
  std::uint64_t tx_steal_frames() const { return tx_steal_frames_; }
  std::uint64_t vri_steals() const { return vri_steals_; }
  std::uint64_t vri_steal_frames() const { return vri_steal_frames_; }

  /// Telemetry layer (DESIGN.md §10), or nullptr when
  /// `config.telemetry.enabled` is false.
  obs::Telemetry* telemetry() { return telemetry_.get(); }
  const obs::Telemetry* telemetry() const { return telemetry_.get(); }

  /// §15 tracer (path spans, per-shard flight recorders, load-adaptive
  /// sampling), or nullptr when `config.tracing.enabled` is false.
  obs::Tracer* tracer() { return tracer_.get(); }
  const obs::Tracer* tracer() const { return tracer_.get(); }

  /// Flushes open audit episodes, publishes the gauge set, and writes
  /// `<prefix>.prom`, `<prefix>.csv` and `<prefix>.trace.json`. Returns
  /// false when telemetry is disabled or a file could not be opened.
  bool export_telemetry(const std::string& prefix);

  /// Publishes the gauge set and appends a snapshot to the retained series
  /// (also runs periodically from the poll loop; exposed for tests).
  void snapshot_telemetry();

  /// Zeroes all per-core accounting (for windowed CPU-usage measurements).
  void reset_accounting();

  /// Extra one-way latency of a given VR's implementation (Click pipeline).
  Nanos vr_pipeline_latency(int vr) const;

 private:
  struct VriSlot;
  struct VrState;
  struct SeqOut;  // §16 per-spray-flow TX sequencer state

  /// Every IPC queue carries FrameCell: an inline FrameMeta classically, a
  /// 32-bit pooled FrameHandle in descriptor mode (DESIGN.md §12). One
  /// element type keeps the two modes on a single code path.
  using FrameQueue = sim::BoundedQueue<net::FrameCell>;
  using FrameServer = sim::PollServer<net::FrameCell>;

  /// One dispatcher shard: its own adapter instance, RX ring, and poll loop
  /// pinned to its own core. Shard 0 is the paper's LVRM process (owner 0,
  /// name "lvrm", pinned to config.lvrm_core); it also hosts the management
  /// plane and every VRI's control relay for shard-0-homed slots.
  struct DispatchShard {
    int id = 0;
    sim::CoreId core_id = sim::kNoCore;
    std::unique_ptr<SocketAdapter> adapter;
    std::unique_ptr<FrameQueue> rx_ring;
    std::unique_ptr<FrameServer> server;
    std::uint64_t rx_admitted = 0;  // frames accepted into this shard's ring
    // §17 fabric: this shard's shared TX drain segment (one MPMC link all
    // homed VRIs produce into), and — with work stealing — the staging
    // queue stolen TX bursts are parked in until this shard's loop drains
    // them, plus its input index on the shard's server.
    queue::SegmentId tx_link_shm = queue::kInvalidSegment;
    std::unique_ptr<FrameQueue> tx_steal_q;
    std::size_t tx_steal_input = 0;
    bool tx_steal_timer_armed = false;
  };

  // --- FrameCell plumbing (descriptor mode; DESIGN.md §12) ------------------
  /// The frame a cell names (pool deref for handles, inline otherwise).
  net::FrameMeta& meta_of(net::FrameCell& cell) {
    return cell.meta(pool_.get());
  }
  /// Consumes a cell into a by-value frame, releasing its pool slot.
  net::FrameMeta take_cell(net::FrameCell&& cell) {
    return std::move(cell).take(pool_.get());
  }
  /// Consumes a cell without using the frame, releasing its pool slot.
  void drop_cell(net::FrameCell&& cell) { std::move(cell).drop(pool_.get()); }
  /// Pushes with handle-safe failure: BoundedQueue::push destroys the
  /// moved-in value on tail-drop, which would silently leak a pool slot, so
  /// the handle is saved first and released when the push is refused.
  bool push_cell(FrameQueue& q, net::FrameCell&& cell) {
    const bool pooled = cell.pooled();
    const net::FrameHandle h = pooled ? cell.handle() : net::kInvalidFrameHandle;
    if (q.push(std::move(cell))) return true;
    if (pooled) pool_->release(h);
    return false;
  }
  /// Drops every queued cell (releasing pool slots); returns how many.
  std::size_t drain_and_drop(FrameQueue& q, DropCause cause) {
    std::size_t n = 0;
    while (q.size() > 0) {
      net::FrameCell c = q.pop();
      note_drop(meta_of(c), cause);
      drop_cell(std::move(c));
      ++n;
    }
    return n;
  }
  /// Reports a drop to the installed hook and (tracing on) the §15 flight
  /// recorder + span collector. Every drop/shed/quarantine exit point in
  /// the system funnels through here, which is what makes one tracer hook
  /// cover them all. Two null checks when both are unset.
  void note_drop(const net::FrameMeta& f, DropCause cause) {
    // §16: a sprayed frame that dies anywhere leaves a hole in its spray
    // sequence — tombstone it so the TX sequencer can release past it
    // instead of stalling until the reorder window overflows.
    if (replication_ && f.sprayed) seq_skip(f);
    if (tracer_) trace_drop(f, cause);
    if (drop_hook_) drop_hook_(f, cause);
  }
  /// push_cell plus drop reporting: the push consumes the cell even on
  /// refusal, so the meta is copied up front — but only when a hook, the
  /// tracer or replication (which must see sprayed-frame drops for its
  /// sequencer tombstones) is installed, keeping the production path
  /// copy-free.
  bool push_cell_or_note(FrameQueue& q, net::FrameCell&& cell,
                         DropCause cause) {
    if (!drop_hook_ && !tracer_ && !replication_)
      return push_cell(q, std::move(cell));
    const net::FrameMeta copy = meta_of(cell);
    if (push_cell(q, std::move(cell))) return true;
    note_drop(copy, cause);
    return false;
  }
  /// RX-side pool exhaustion: count (aggregate + per shard), report the
  /// drop, and audit at most once per sim second with the exhaustion cause.
  void on_pool_exhausted(int shard, const net::FrameMeta& frame);

  VrState& classify(net::FrameMeta& frame);
  Nanos rx_cost(net::FrameMeta& frame, DispatchShard& shard);
  Nanos rx_cost_batch(std::span<net::FrameCell> cells, DispatchShard& shard);
  void rx_sink(net::FrameCell&& cell);
  void maybe_allocate();
  void reap_crashed();
  void activate_vri(VrState& vr, bool from_recovery = false);
  void activate_slot(VrState& vr, VriSlot& slot, bool from_recovery = false);
  void deactivate_vri(VrState& vr);
  /// Picks a core for a VRI anchored at its home shard's core, applying the
  /// affinity policy with the two-level NUMA preference (DESIGN.md §11).
  NumaPick pick_core(sim::CoreId anchor);
  void release_core(sim::CoreId id);
  void schedule_migration(VriSlot& slot);
  /// Whether a queue operation between these two cores crosses a socket.
  bool cross_socket(sim::CoreId a, sim::CoreId b) const;
  /// Core a dispatcher shard created after shard 0 gets pinned to.
  sim::CoreId pick_shard_core(int shard);
  int total_active_vris() const;
  double measured_service_rate(const VrState& vr) const;
  double vri_departure_rate(const VriSlot& slot) const;
  VrAllocView alloc_view(const VrState& vr) const;
  bool any_free_core() const;
  // Health monitoring & recovery.
  void maybe_health_probe();
  void recover_slot(VrState& vr, VriSlot& slot, VriHealth reason,
                    Nanos stalled_for);
  void rebuild_router(VrState& vr, VriSlot& slot);
  void discard_stale_control(VriSlot& slot);
  std::size_t redispatch(VrState& vr, std::vector<net::FrameCell>& cells);
  // Overload shedding; returns true when the frame was handled (shed).
  bool maybe_shed(VrState& vr, VriSlot& slot, net::FrameCell& cell);
  // Overload ladder (DESIGN.md §13; all no-ops unless
  // config.overload_control.enabled).
  /// Whether the frame's flow falls in the sampling subset at this rate.
  bool in_subset(const net::FrameMeta& f, double rate) const;
  /// Level-2 RX gate; true when the frame was rejected before ring/pool.
  bool admission_reject(net::FrameMeta& frame);
  /// Level-1 dispatch-time sampling shed (also feeds the window pressure
  /// accounting and the bias-corrected offered estimate).
  bool maybe_sample_shed(VrState& vr, VriSlot& slot, net::FrameCell& cell);
  /// Window adaptation: escalate / relax the VR's sampling rate and level.
  void overload_tick(VrState& vr, Nanos now);
  void set_overload_state(VrState& vr, OverloadLevel level, double rate,
                          double pressure);
  /// Reset-free drain, phase 1: quiesce the slot's server (the in-service
  /// frame completes and egresses; nothing new is popped) and run
  /// finish_drain once it is idle — synchronously when already idle. The
  /// slot stays dispatchable until then so pinned-flow arrivals queue FIFO
  /// behind the backlog instead of racing it to a sibling. `done` (optional)
  /// fires with the completed DrainEvent.
  void drain_slot(VrState& vr, VriSlot& slot, DrainCause cause,
                  std::function<void(const DrainEvent&)> done = {});
  /// Reset-free drain, phase 2: migrate the slot's live queue and flow pins
  /// to the surviving siblings, keep its router state warm for reactivation.
  void finish_drain(VrState& vr, VriSlot& slot, DrainCause cause,
                    const std::function<void(const DrainEvent&)>& done);
  /// One synthetic flash-crowd frame + reschedule (inject_overload_burst).
  void burst_step(int vr, Nanos gap, Nanos until);
  // Telemetry (all no-ops when telemetry is disabled).
  void maybe_snapshot();
  void publish_gauges();
  // §15 tracing (all no-ops when tracing is disabled / tracer_ is null).
  /// Flight-record + (sampled frames) span-collect a drop exit.
  void trace_drop(const net::FrameMeta& f, DropCause cause);
  /// Snapshot the flight recorders on an incident and audit the dump.
  void trace_flight_dump(obs::FlightDumpCause cause, int shard, int vr,
                         int vri);
  /// The frame's hop timeline as a PathSpan (terminal: 0 = delivered).
  obs::PathSpan span_of(const net::FrameMeta& f, std::uint8_t terminal) const;
  void audit_vri_change(VrState& vr, VriSlot& slot, bool create,
                        bool from_recovery);
  void audit_balance_and_shed(Nanos now);
  void close_shed_episode(VrState& vr, Nanos now);
  // State replication (DESIGN.md §16; all no-ops unless
  // config.state_replication.enabled → replication_).
  /// Heavy-hitter detection + spray override after the flow-pinned dispatch
  /// decision: counts the flow in its detection window, starts the snapshot
  /// handshake on promotion, stamps spray metadata, and — once the flow is
  /// Active — overrides `chosen` with a per-frame min-load pick.
  int maybe_spray(VrState& vr, DispatchShard& shard, net::FrameMeta& f,
                  std::span<const VriView> views, int chosen, Nanos now);
  /// Copies the flow's state from the owner to every active sibling over
  /// the control rings; the spray goes Active when the slowest acks.
  void start_spray_handshake(VrState& vr, int shard, int owner,
                             const net::FiveTuple& tuple, double rate_fps,
                             double threshold_fps);
  /// Drains the deltas a stateful router queued while processing a sprayed
  /// frame and relays each to the active siblings (delta_period-gated).
  /// Returns how many deltas were drained (the emit-cost multiplier).
  std::size_t relay_deltas(VrState& vr, VriSlot& slot);
  /// TX-side completion: counters, tracer/telemetry, egress. Split out of
  /// the TX sink so the sequencer can release held frames through it.
  void finish_tx(VrState& vr, net::FrameMeta&& f);
  /// Reorders a sprayed frame back into external arrival order; releases
  /// every in-order frame (and tombstoned hole) through finish_tx.
  void sequence_tx(VrState& vr, net::FrameMeta&& f);
  /// Records a dropped sprayed frame's sequence number as a hole.
  void seq_skip(const net::FrameMeta& f);
  /// Releases the run of consecutive held frames/tombstones at `so.next`.
  void seq_release_run(VrState& vr, SeqOut& so);
  /// Idle-expires spray entries and empty sequencers (1 s cadence, rides
  /// the allocation pass).
  void spray_gc(Nanos now);
  /// Invalidates every shard dispatcher's cached healthy pool for this VR;
  /// called whenever a slot's health/membership could have changed.
  void bump_pool_generation(VrState& vr);
  // §17 MPMC fabric & work stealing (no-ops unless `work_stealing`).
  /// Idle-shard TX-drain steal: pull a head burst from another shard's
  /// homed slot's drain into this shard's staging queue, gating the victim
  /// until the burst has egressed so same-slot frames cannot overtake.
  /// Returns true when a burst was staged (the idle scan then re-runs).
  bool try_tx_steal(DispatchShard& thief);
  /// Idle-VRI ingress steal from an overloaded same-VR sibling. Only
  /// unpinned heads move: frame-granularity frames carry no per-flow FIFO
  /// promise, and Active-sprayed frames are re-sequenced at TX (§16) —
  /// the scan stops at the first pinned head, so a pinned flow's FIFO is
  /// never broken. Returns true when frames were moved.
  bool try_vri_steal(VrState& vr, VriSlot& thief);
  /// Re-polls an idle thief while same-VR siblings still hold stealable
  /// backlog; the timer dies with the VR's queues so the sim can drain.
  void arm_steal_timer(VrState& vr, VriSlot& thief);
  /// Re-polls an idle shard's TX-steal hook while any foreign slot's egress
  /// drain holds a stealable backlog (the shard's own loop only re-scans on
  /// events, and a fully idle thief gets none).
  void arm_tx_steal_timer(DispatchShard& thief);
  /// Wakes idle foreign shards when `s`'s egress drain crosses the steal
  /// threshold — the event-driven bootstrap for the timer above.
  void maybe_poke_tx_thieves(VriSlot& s);
  /// Whether the frame's spray entry is Active (replicated state on every
  /// sibling); Pending-sprayed frames stay pinned and must not be stolen.
  bool spray_is_active(const VrState& vr, const net::FrameMeta& f) const;
  /// Rate-limited (1/sim-second per kind) §17 steal audit event.
  void audit_steal(obs::AuditKind kind, int thief, const VriSlot& victim,
                   std::size_t burst);
  /// The slot whose TX drain a stolen frame came from (from its dispatch
  /// stamps); null only if the stamps are out of range.
  VriSlot* steal_victim_slot(const net::FrameMeta& f);

  sim::Simulator& sim_;
  sim::CpuTopology topo_;
  LvrmConfig config_;
  Rng rng_;

  std::vector<std::unique_ptr<sim::Core>> cores_;
  std::vector<bool> core_used_;
  queue::ShmArena arena_;

  // Shared frame pool (descriptor mode only; created in start() so its
  // auto-sizing sees the final shard and queue geometry).
  std::unique_ptr<net::FramePool> pool_;
  std::uint64_t pool_exhausted_drops_ = 0;
  Nanos last_pool_audit_ = -1;  // rate limit: one audit event per sim second

  std::vector<DispatchShard> shards_;  // fixed at construction, never resized
  std::unique_ptr<CoreAllocator> allocator_;

  std::vector<std::unique_ptr<VrState>> vrs_;
  std::function<void(net::FrameMeta&&)> egress_;

  // Initialized so the first allocation pass happens one full period after
  // start ("after 1s or more from the previous core allocation process" —
  // VR start counts as the previous process), by which time the arrival
  // EWMA has real samples.
  Nanos last_alloc_pass_ = 0;
  std::vector<AllocationEvent> alloc_log_;

  std::unique_ptr<HealthMonitor> health_;
  Nanos last_health_probe_ = 0;
  std::vector<RecoveryEvent> recovery_log_;
  std::uint64_t redispatched_ = 0;

  // Overload-resilience layer (DESIGN.md §13).
  DropHook drop_hook_;
  std::vector<DrainEvent> drain_log_;
  std::uint64_t flows_migrated_ = 0;
  /// VRs currently at kAdmission: ingress pays the classify + subset check
  /// only while this is non-zero (one int compare otherwise).
  int admission_active_ = 0;
  std::uint64_t burst_seq_ = 0;  // synthetic overload-burst frame ids

  // Batched-hot-path scratch (reused per burst; no allocation after warm-up):
  // per-VR pointer groups of the current RX burst, and the VriView set.
  std::vector<std::vector<net::FrameMeta*>> rx_groups_;
  std::vector<VriView> views_scratch_;

  // Telemetry layer. `obs_` carries the pre-registered hot-path handles and
  // snapshot bookkeeping; one null check gates every hot-path touch.
  struct ObsHooks;
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<ObsHooks> obs_;

  // §15 tracing layer: per-shard flight recorders + the adaptive sampling
  // controller + the retained path spans. Null unless config.tracing is
  // enabled; every hot-path touch is gated on this one pointer.
  std::unique_ptr<obs::Tracer> tracer_;

  std::uint64_t forwarded_ = 0;
  std::uint64_t crashes_reaped_ = 0;
  std::uint64_t unclassified_drops_ = 0;
  std::uint64_t control_drops_ = 0;
  std::uint64_t next_control_id_ = 1;
  std::unordered_map<std::uint64_t, std::function<void(Nanos)>> control_cbs_;

  // State replication (DESIGN.md §16). `replication_` caches the config
  // gate so the hot-path checks (note_drop, push_cell_or_note, the TX sink)
  // stay one bool test with the feature off.
  bool replication_ = false;
  std::uint64_t sprayed_frames_ = 0;
  std::uint64_t spray_activations_ = 0;
  std::uint64_t deltas_sent_ = 0;
  std::uint64_t deltas_applied_ = 0;
  std::uint64_t seq_holds_ = 0;
  std::uint64_t seq_gap_skips_ = 0;
  std::uint64_t seq_window_overflows_ = 0;
  std::uint32_t next_spray_flow_ = 1;
  Nanos last_spray_gc_ = 0;

  // §17 MPMC fabric & work stealing. `fabric_`/`stealing_` cache the config
  // gates (stealing requires the fabric) so hot-path checks stay one bool.
  bool fabric_ = false;
  bool stealing_ = false;
  std::uint64_t tx_steals_ = 0;
  std::uint64_t tx_steal_frames_ = 0;
  std::uint64_t vri_steals_ = 0;
  std::uint64_t vri_steal_frames_ = 0;
  Nanos last_tx_steal_audit_ = -1;   // rate limit: one audit event per second
  Nanos last_vri_steal_audit_ = -1;

  bool started_ = false;
};

}  // namespace lvrm
