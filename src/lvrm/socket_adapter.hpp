// socket_adapter.hpp — the pluggable frame I/O interface (Sec 3.1).
//
// "The socket adapter is the software interface that relays data frames via
// LVRM" — it hides how frames reach user space. Three variants ship, as in
// the thesis: the raw BSD socket (syscall per frame, kernel<->user copies),
// PF_RING-style zero-copy polling (LVRM v1.1 also *sends* through PF_RING),
// and a main-memory trace reader used to isolate LVRM's internal overhead.
// In the simulation the variant determines the per-frame RX/TX costs, their
// `top` accounting category, and the RX ring depth.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "lvrm/types.hpp"
#include "net/frame.hpp"
#include "sim/core.hpp"

namespace lvrm {

class SocketAdapter {
 public:
  virtual ~SocketAdapter() = default;

  virtual AdapterKind kind() const = 0;
  std::string name() const { return to_string(kind()); }

  /// CPU cost on the LVRM core to obtain one frame from the lower level.
  virtual Nanos recv_cost(const net::FrameMeta& f) const = 0;
  /// CPU cost on the LVRM core to hand one frame to the lower level.
  virtual Nanos send_cost(const net::FrameMeta& f) const = 0;

  /// `top` category the costs account to (syscalls vs user-space polling).
  virtual sim::CostCategory recv_category() const = 0;
  virtual sim::CostCategory send_category() const = 0;

  /// Depth of the RX ring frames wait in before LVRM polls them.
  virtual std::size_t ring_capacity() const = 0;
};

/// Raw BSD socket (non-blocking recvfrom()/send()).
class RawSocketAdapter final : public SocketAdapter {
 public:
  AdapterKind kind() const override { return AdapterKind::kRawSocket; }
  Nanos recv_cost(const net::FrameMeta& f) const override;
  Nanos send_cost(const net::FrameMeta& f) const override;
  sim::CostCategory recv_category() const override {
    return sim::CostCategory::kSystem;
  }
  sim::CostCategory send_category() const override {
    return sim::CostCategory::kSystem;
  }
  std::size_t ring_capacity() const override;
};

/// PF_RING-style zero-copy polling (both directions, as of LVRM v1.1).
class PfRingAdapter final : public SocketAdapter {
 public:
  AdapterKind kind() const override { return AdapterKind::kPfRing; }
  Nanos recv_cost(const net::FrameMeta& f) const override;
  Nanos send_cost(const net::FrameMeta& f) const override;
  sim::CostCategory recv_category() const override {
    return sim::CostCategory::kUser;
  }
  sim::CostCategory send_category() const override {
    return sim::CostCategory::kUser;
  }
  std::size_t ring_capacity() const override;
};

/// Main-memory trace replay with a discard sink (Exp 1c/1d).
class MemoryAdapter final : public SocketAdapter {
 public:
  AdapterKind kind() const override { return AdapterKind::kMemory; }
  Nanos recv_cost(const net::FrameMeta& f) const override;
  Nanos send_cost(const net::FrameMeta& f) const override;
  sim::CostCategory recv_category() const override {
    return sim::CostCategory::kUser;
  }
  sim::CostCategory send_category() const override {
    return sim::CostCategory::kUser;
  }
  std::size_t ring_capacity() const override;
};

std::unique_ptr<SocketAdapter> make_adapter(AdapterKind kind);

/// One adapter instance per dispatcher shard (DESIGN.md §11): each shard
/// polls its own RX ring, as PF_RING does with one ring per RSS queue.
/// Adapters are stateless cost models, so instances never share state.
std::vector<std::unique_ptr<SocketAdapter>> make_adapters(AdapterKind kind,
                                                          int count);

}  // namespace lvrm
