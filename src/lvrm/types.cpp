#include "lvrm/types.hpp"

namespace lvrm {

std::string to_string(AdapterKind k) {
  switch (k) {
    case AdapterKind::kRawSocket: return "raw-socket";
    case AdapterKind::kPfRing: return "pf-ring";
    case AdapterKind::kMemory: return "memory";
  }
  return "?";
}

std::string to_string(AllocatorKind k) {
  switch (k) {
    case AllocatorKind::kFixed: return "fixed";
    case AllocatorKind::kDynamicFixedThreshold: return "dynamic-fixed";
    case AllocatorKind::kDynamicDynamicThreshold: return "dynamic-dynamic";
  }
  return "?";
}

std::string to_string(BalancerKind k) {
  switch (k) {
    case BalancerKind::kJoinShortestQueue: return "jsq";
    case BalancerKind::kRoundRobin: return "round-robin";
    case BalancerKind::kRandom: return "random";
  }
  return "?";
}

std::string to_string(BalancerGranularity k) {
  switch (k) {
    case BalancerGranularity::kFrame: return "frame-based";
    case BalancerGranularity::kFlow: return "flow-based";
  }
  return "?";
}

std::string to_string(EstimatorKind k) {
  switch (k) {
    case EstimatorKind::kQueueLength: return "queue-length";
    case EstimatorKind::kArrivalTime: return "arrival-time";
  }
  return "?";
}

std::string to_string(AffinityPolicy k) {
  switch (k) {
    case AffinityPolicy::kSibling: return "sibling";
    case AffinityPolicy::kNonSibling: return "non-sibling";
    case AffinityPolicy::kDefault: return "default";
    case AffinityPolicy::kSame: return "same";
  }
  return "?";
}

std::string to_string(VrKind k) {
  switch (k) {
    case VrKind::kCpp: return "c++";
    case VrKind::kClick: return "click";
    case VrKind::kNat: return "nat";
    case VrKind::kFirewall: return "firewall";
    case VrKind::kRateLimit: return "rate-limit";
  }
  return "?";
}

std::string to_string(VriHealth k) {
  switch (k) {
    case VriHealth::kHealthy: return "healthy";
    case VriHealth::kDead: return "dead";
    case VriHealth::kHung: return "hung";
    case VriHealth::kFailSlow: return "fail-slow";
  }
  return "?";
}

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kSlowdown: return "slowdown";
    case FaultKind::kControlLoss: return "control-loss";
    case FaultKind::kOverloadBurst: return "overload-burst";
  }
  return "?";
}

std::string to_string(ShedPolicy k) {
  switch (k) {
    case ShedPolicy::kNone: return "none";
    case ShedPolicy::kDropNewest: return "drop-newest";
    case ShedPolicy::kDropOldest: return "drop-oldest";
  }
  return "?";
}

std::string to_string(OverloadLevel k) {
  switch (k) {
    case OverloadLevel::kNormal: return "normal";
    case OverloadLevel::kSampling: return "sampling";
    case OverloadLevel::kAdmission: return "admission";
  }
  return "?";
}

std::string to_string(DropCause k) {
  switch (k) {
    case DropCause::kRxRingFull: return "rx-ring-full";
    case DropCause::kPoolExhausted: return "pool-exhausted";
    case DropCause::kAdmissionReject: return "admission-reject";
    case DropCause::kSampledShed: return "sampled-shed";
    case DropCause::kShedDropNewest: return "shed-drop-newest";
    case DropCause::kShedDropOldest: return "shed-drop-oldest";
    case DropCause::kQueueFull: return "queue-full";
    case DropCause::kUnclassified: return "unclassified";
    case DropCause::kVriInactive: return "vri-inactive";
    case DropCause::kVriDestroyed: return "vri-destroyed";
    case DropCause::kNoRoute: return "no-route";
    case DropCause::kVrPolicy: return "vr-policy";
  }
  return "?";
}

std::string to_string(DrainCause k) {
  switch (k) {
    case DrainCause::kAllocatorDestroy: return "allocator-destroy";
    case DrainCause::kDecommission: return "decommission";
    case DrainCause::kFailSlow: return "fail-slow";
  }
  return "?";
}

}  // namespace lvrm
