// config.hpp — configuration of LVRM and of each hosted VR.
//
// Defaults mirror Sec 4.1's "Default implementation of LVRM": PF_RING socket
// adapter, dynamic core allocation with fixed thresholds, frame-based
// join-the-shortest-queue balancing, 1-second re-allocation period.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "lvrm/types.hpp"
#include "net/ip.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/costs.hpp"
#include "sim/topology.hpp"

namespace lvrm {

/// Health-monitoring layer (heartbeats + fail-slow watchdog). Disabled by
/// default so the stock Sec 3.2 supervision (the 1 s allocation pass) is the
/// baseline; every existing experiment is bit-for-bit unchanged with it off.
struct HealthConfig {
  bool enabled = false;

  /// Heartbeat sampling period of the LVRM poll loop — decoupled from (and
  /// much shorter than) the 1 s re-allocation period.
  Nanos probe_period = msec(100);

  /// A VRI whose progress counter has not advanced for this long while its
  /// data queue is non-empty is declared hung.
  Nanos heartbeat_timeout = msec(250);

  /// Fail-slow watchdog: a VRI is struck when its measured departure rate
  /// falls below this fraction of its siblings' median.
  double fail_slow_fraction = 0.5;

  /// Consecutive strikes before a fail-slow verdict (rides out transients).
  int fail_slow_grace = 3;

  /// Rescue frames stranded in a dead/hung VRI's incoming data queue and
  /// re-dispatch them across the surviving VRIs instead of dropping them.
  bool redispatch_stranded = true;
};

/// Overload-resilience ladder (DESIGN.md §13): a per-VR backpressure
/// controller that escalates normal -> adaptive per-flow sampling shed ->
/// RX-side admission control, plus the reset-free VRI drain path. Disabled
/// by default: with `enabled = false` no controller state is touched, no
/// metric is registered and every output is byte-identical to the seed —
/// the same rollout discipline as `batched_hot_path` / `descriptor_rings`.
struct OverloadConfig {
  bool enabled = false;

  /// A dispatched frame whose *chosen* data queue sits at or above this
  /// fraction of capacity counts as "pressured" in the adaptation window.
  /// Well under the classic `shed_watermark` so the ladder reacts before
  /// blind tail-drop would.
  double sample_watermark = 0.5;

  /// Adaptation cadence — the controller re-evaluates the window pressure
  /// at most once per period. Much shorter than the 1 s allocation pass:
  /// sampling is reversible and bias-corrected, so reacting inside a flash
  /// crowd's rise time is safe where core re-allocation is not.
  Nanos adapt_period = msec(1);

  /// Window pressure fraction at or above which the controller escalates
  /// (halves the sampling rate, bumps the ladder level).
  double escalate_pressure = 0.5;

  /// Window pressure fraction at or below which it relaxes (doubles the
  /// rate; the level steps down when the rate recovers to 1).
  double relax_pressure = 0.1;

  /// Floor of the per-flow sampling rate: even a worst-case flood keeps
  /// this fraction of flows fully monitored.
  double min_sample_rate = 1.0 / 64.0;

  /// Consecutive escalations before RX-side admission control (level 2)
  /// engages — sustained pressure, not one bursty window.
  int admission_after = 2;

  /// Drain (migrate live flows to siblings, keep router state warm)
  /// instead of dropping queued frames when the allocator destroys a VRI
  /// or the health layer quarantines a fail-slow one.
  bool drain_on_destroy = true;

  /// Salt decorrelating the sampling subset hash from the RSS shard hash
  /// and the flow-table hash (all three key on the same 5-tuple).
  std::uint64_t subset_salt = 0x9e3779b97f4a7c15ull;
};

/// State-compute replication (DESIGN.md §16): lets a single hot flow of a
/// *stateful* VR scale past one VRI. When a flow's measured rate crosses the
/// elephant threshold, the dispatcher "sprays" its frames across all healthy
/// VRIs; every state change the owning routers make rides the existing
/// control rings to the siblings as StateDelta records, and a TX-side
/// per-flow sequencer releases frames in dispatch order so the external
/// output is never reordered. Disabled by default: no detector state, no
/// metric is registered, every frame field stays 0 and outputs are
/// byte-identical to the seed (same rollout discipline as
/// `batched_hot_path` / `overload_control` / `tracing`).
struct StateReplicationConfig {
  bool enabled = false;

  /// A flow is an elephant when its rate inside one detection window
  /// exceeds this fraction of `per_vri_capacity_fps` — i.e. when it alone
  /// occupies this share of the core it is pinned to.
  double elephant_fraction = 0.5;

  /// Length of the windows the rate detector counts frames over.
  Nanos detect_window = msec(5);

  /// Floor on frames-per-window before a flow can be promoted, so tiny
  /// capacity configurations don't promote mice off a handful of frames.
  std::uint64_t min_frames = 64;

  /// Emit every Nth state delta of a sprayed flow (1 = every change).
  /// Larger periods trade replica staleness for control-ring traffic.
  std::uint32_t delta_period = 1;

  /// Max out-of-order frames the TX sequencer holds per sprayed flow
  /// before force-releasing (a safety valve, counted when it fires).
  std::size_t reorder_window = 1024;
};

struct LvrmConfig {
  AdapterKind adapter = AdapterKind::kPfRing;
  AllocatorKind allocator = AllocatorKind::kDynamicFixedThreshold;
  BalancerKind balancer = BalancerKind::kJoinShortestQueue;
  BalancerGranularity granularity = BalancerGranularity::kFrame;
  EstimatorKind estimator = EstimatorKind::kQueueLength;
  AffinityPolicy affinity = AffinityPolicy::kSibling;

  /// Core the LVRM process itself is pinned to. With `dispatch_shards` > 1
  /// this is shard 0's core; later shards are pinned by `shard_core(s)`.
  sim::CoreId lvrm_core = 0;

  /// Number of LVRM dispatcher shards (DESIGN.md §11). Each shard owns its
  /// own socket-adapter RX ring, flow tables, load balancers, and poll loop
  /// pinned to its own core; an RSS-style hash of the frame's flow key
  /// steers every frame of a flow to the same shard, so the paper's flow
  /// affinity (and per-flow ordering) holds end to end. Default 1 is the
  /// paper's single-dispatcher gateway, bit-identical to the unsharded
  /// code path.
  int dispatch_shards = 1;

  /// Minimum interval between core (de)allocation passes (Sec 3.2: "we set
  /// the period to be 1 second, while this parameter is tunable").
  Nanos realloc_period = sec(1);

  /// Per-core capacity threshold for the fixed-threshold allocator. The
  /// experiments use 60 Kfps, the service rate under the 1/60 ms dummy load.
  double per_vri_capacity_fps = 60'000.0;

  /// Destroy-side hysteresis keeping arrival == threshold from flapping.
  double destroy_hysteresis = 0.97;

  /// Weight of the Fig 3.4 EWMA recurrences.
  double ewma_weight = 7.0;

  /// Upper bound on VRIs per VR (the testbed has 7 cores besides LVRM's).
  int max_vris_per_vr = 7;

  std::size_t data_queue_capacity = sim::costs::kDataQueueCapacity;
  std::size_t control_queue_capacity = sim::costs::kControlQueueCapacity;

  /// Frames drained per poll-loop pass from the RX ring and from each VRI's
  /// outgoing queue. Larger batches amortize the loop but delay control
  /// events and (for TX) can reorder frames balanced across VRIs — see the
  /// dispatch ablation bench.
  std::size_t poll_batch = sim::costs::kPollBatch;

  /// Batched hot path (DESIGN.md §9): LVRM's RX and TX inputs drain their
  /// poll_batch burst as ONE coalesced core event — batch dispatch collapses
  /// repeated flow-table probes within the burst, and all frames of a burst
  /// complete together at its summed-cost completion time. Off by default:
  /// the classic per-frame serve order is the reference behavior every
  /// experiment is calibrated against (bit-identical results).
  bool batched_hot_path = false;

  /// Descriptor-passing data path (DESIGN.md §12): data frames are written
  /// once into a shared-memory FramePool at RX ingress and every IPC queue
  /// hop carries a 32-bit FrameHandle instead of the ~128-byte FrameMeta;
  /// the slot is freed at TX completion or drop. Off by default: the
  /// copy-per-hop path is the calibrated reference (bit-identical results,
  /// same rollout discipline as `batched_hot_path`).
  bool descriptor_rings = false;

  /// Slots in the shared frame pool when `descriptor_rings` is on. 0 (the
  /// default) sizes it automatically to cover every RX ring and VRI data
  /// queue at full occupancy plus slack, so exhaustion cannot precede
  /// queue tail-drop; set explicitly to exercise exhaustion behavior.
  std::size_t frame_pool_capacity = 0;

  /// MPMC virtual-link IPC fabric (DESIGN.md §17): collapses the
  /// O(shards × VRIs) SPSC mesh into one multi-producer ingress link per
  /// VRI and one multi-consumer TX drain per home shard, carrying 32-bit
  /// FrameHandles (`queue/mpmc_link.hpp`). Off by default: the SPSC mesh
  /// is the calibrated reference and results are byte-identical off-vs-on
  /// with `work_stealing` off (same rollout discipline as
  /// `batched_hot_path` / `descriptor_rings`).
  bool mpmc_fabric = false;

  /// Work stealing over the MPMC fabric (DESIGN.md §17, requires
  /// `mpmc_fabric`): an idle shard steals TX bursts from another shard's
  /// home drain, and an idle VRI steals ingress frames from an overloaded
  /// same-VR sibling — only unpinned (frame-granularity or sprayed)
  /// frames, so flow pinning and the §16 sequencer keep external order
  /// exact. Off by default; no hook is installed and outputs are
  /// byte-identical with it off.
  bool work_stealing = false;

  /// Minimum victim backlog (queued frames) before an idle VRI steals from
  /// a sibling — stealing the last few frames of a near-empty queue costs
  /// more coherence traffic than it saves.
  std::size_t steal_min_backlog = 8;

  /// Re-poll period of an idle thief while same-VR siblings still hold
  /// backlog. The timer dies as soon as the VR goes idle, so a quiescing
  /// simulation still terminates.
  Nanos steal_poll_period = usec(5);

  /// Million-flow connection tracking (DESIGN.md §14): every per-shard
  /// Dispatcher swaps the linear-probing FlowTable for FlowTableV2 —
  /// cache-line-bucketed tags, incremental (pause-free) resize, idle-expiry
  /// GC wheel, O(flows-on-VRI) eviction. Off by default: the classic table
  /// is the calibrated reference and results are byte-identical off-vs-on
  /// (same rollout discipline as `batched_hot_path` / `descriptor_rings`).
  bool flow_table_v2 = false;

  /// Initial per-Dispatcher flow-table capacity hint, in entries. The
  /// default matches the classic table's historical footprint; a gateway
  /// expected to front millions of concurrent flows should start near its
  /// steady state so the ramp-up skips the early resize ladder.
  std::size_t flow_table_capacity = 4096;

  /// Seed for the random balancer, allocation-jitter and kernel-migration
  /// draws; everything is deterministic given the seed.
  std::uint64_t seed = 1;

  /// Health monitoring & fault tolerance (heartbeats, fail-slow watchdog,
  /// quarantine-and-respawn, stranded-frame re-dispatch).
  HealthConfig health;

  /// Overload shedding: drop policy applied per VR once it can grow no
  /// further (max VRIs or no free cores) and its chosen data queue passes
  /// `shed_watermark` of capacity. kNone keeps the legacy tail-drop.
  ShedPolicy shed_policy = ShedPolicy::kNone;
  double shed_watermark = 0.9;

  /// Graceful-degradation ladder + reset-free drain (DESIGN.md §13).
  OverloadConfig overload_control;

  /// Telemetry layer (DESIGN.md §10): metrics registry, latency sampling,
  /// decision audit trail, exporters. Enabled by default — the hot-path
  /// cost is bounded by the bench_hotpath CI gate (<3%); set
  /// `telemetry.enabled = false` to remove even that.
  obs::TelemetryConfig telemetry;

  /// Frame-level path tracing, flight recorder and load-adaptive sampling
  /// (DESIGN.md §15). Off by default: no Tracer is created, the hot path
  /// pays one pointer null check, and every output is byte-identical to
  /// the seed (same rollout discipline as `batched_hot_path` /
  /// `descriptor_rings` / `overload_control`).
  obs::TracingConfig tracing;

  /// State-compute replication for stateful VRs (DESIGN.md §16).
  StateReplicationConfig state_replication;
};

struct VrConfig {
  std::string name = "vr";

  /// Source subnets owned by this VR: a frame whose source address falls in
  /// one of them is dispatched to this VR (Sec 2.1 workflow step 2).
  std::vector<net::Prefix> subnets;

  VrKind kind = VrKind::kCpp;

  /// Route map (parse_route_map format); empty selects default_route_map().
  std::string route_map;

  /// Artificial per-frame processing load, e.g. the experiments' 1/60 ms.
  Nanos dummy_load = 0;

  /// Scales all per-frame processing cost; Exp 2e uses 2.0 for the slow VR
  /// (service-rate ratio 1:2).
  double service_multiplier = 1.0;

  /// VRIs activated at start(). The fixed allocator keeps exactly this
  /// many; dynamic allocators treat it as the starting point (normally 1).
  int initial_vris = 1;

  /// When hosting a Click VR, whether frames traverse the real element
  /// graph (tests/examples) or the equivalent LPM fallback (large sweeps).
  bool click_use_graph = true;

  /// Hand-written Click configuration for this VR (Click VRs only). Empty
  /// selects the generated minimal forwarder. Must declare a FromHost named
  /// "in" and at least one ToHost; a LookupIPRoute named "rt" participates
  /// in dynamic route updates.
  std::string click_script;

  // --- stateful-VR parameters (kNat / kFirewall / kRateLimit) -----------
  // The stateful kinds are decorators over a stateless forwarding engine;
  // `inner_kind` picks it (kCpp or kClick — the Click options above apply
  // to the inner engine too). See docs/VR_AUTHORING.md.

  /// Forwarding engine a stateful VR wraps. Ignored by kCpp/kClick.
  VrKind inner_kind = VrKind::kCpp;

  /// kNat: external (translated) source address; 0 selects 192.0.2.1.
  net::Ipv4Addr nat_external_ip = 0;

  /// kNat: first port and size of the external port pool.
  std::uint16_t nat_port_base = 20000;
  std::uint16_t nat_port_count = 4096;

  /// kRateLimit: per-flow token refill rate (frames/s) and bucket depth.
  double rate_limit_fps = 30'000.0;
  double rate_limit_burst = 64.0;
};

}  // namespace lvrm
