// types.hpp — the enumerations naming LVRM's extensibility dimensions.
//
// Chapter 3 structures LVRM as a set of components each supporting "different
// variants of implementation": the socket adapter (3.1), core allocation
// (3.2), load balancing (3.3), load estimation (3.4) and the IPC queue (3.5).
// Every dimension is an enum here plus an interface elsewhere in this
// directory; the test suite asserts all combinations compose.
#pragma once

#include <string>

namespace lvrm {

/// Socket adapter variants (Sec 3.1).
enum class AdapterKind {
  kRawSocket,  // BSD raw socket, recvfrom()/send() syscalls
  kPfRing,     // PF_RING-style zero-copy NIC polling (LVRM v1.1: both ways)
  kMemory,     // trace replay from main memory (Exp 1c/1d)
};

/// Core allocation approaches (Sec 3.2, Fig 3.2).
enum class AllocatorKind {
  kFixed,                    // pre-assigned core set at VR start
  kDynamicFixedThreshold,    // EWMA arrival rate vs. per-core rate thresholds
  kDynamicDynamicThreshold,  // arrival rate vs. measured VRI service rate
};

/// Load balancing schemes (Sec 3.3, Fig 3.3).
enum class BalancerKind {
  kJoinShortestQueue,
  kRoundRobin,
  kRandom,
};

/// Frame-based vs flow-based dispatch (Sec 3.3).
enum class BalancerGranularity {
  kFrame,  // every frame balanced independently
  kFlow,   // 5-tuple pinning via the connection-tracking table
};

/// Load estimation variants (Sec 3.4, Fig 3.4).
enum class EstimatorKind {
  kQueueLength,   // EWMA of the VRI's incoming data-queue length
  kArrivalTime,   // EWMA of inter-arrival gaps (reported as a rate)
};

/// Core affinity policies examined by Exp 2a.
enum class AffinityPolicy {
  kSibling,     // prefer cores on LVRM's socket
  kNonSibling,  // prefer cores on the other socket
  kDefault,     // let the (simulated) kernel place and migrate the VRI
  kSame,        // run the VRI on LVRM's own core
};

/// Hosted VR implementations (Sec 3.8). The first two are stateless
/// forwarders; the rest are stateful VRs (src/vr, DESIGN.md §16) layered on
/// top of a stateless inner forwarder chosen by `VrConfig::inner_kind`.
enum class VrKind {
  kCpp,        // minimal C++ forwarder
  kClick,      // Click Modular Router element graph
  kNat,        // source NAT: 5-tuple translation table + port pool
  kFirewall,   // stateful firewall: TCP connection tracker over FlowTableV2
  kRateLimit,  // per-flow token-bucket rate limiter
};

/// Health states the monitor can assign to a VRI (robustness layer).
enum class VriHealth {
  kHealthy,
  kDead,      // process gone (crash / OOM-kill); probe unreachable
  kHung,      // process alive, progress counter frozen with work pending
  kFailSlow,  // progressing, but persistently slower than its siblings
};

/// Injectable fault kinds (fault_injector.hpp).
enum class FaultKind {
  kCrash,          // process dies; queues go stale
  kHang,           // process stalls (deadlock / SIGSTOP) but stays alive
  kSlowdown,       // per-frame service cost multiplied (sick process)
  kControlLoss,    // control events to this VRI are dropped in the relay
  kOverloadBurst,  // synthetic flash-crowd burst injected at RX ingress
};

/// Per-VR load-shedding policy once arrival exceeds allocated capacity and
/// no cores remain to grow into (graceful degradation under overload).
enum class ShedPolicy {
  kNone,        // legacy behaviour: tail-drop only when a queue is full
  kDropNewest,  // shed the arriving frame at LVRM before the enqueue
  kDropOldest,  // evict the head of the chosen queue to admit the new frame
};

/// Degradation-ladder level of one VR's backpressure controller
/// (DESIGN.md §13). The ladder escalates one rung at a time and relaxes the
/// same way, so every transition is observable in the audit trail.
enum class OverloadLevel {
  kNormal,     // every offered frame is dispatched
  kSampling,   // hash-based per-flow sampling shed at dispatch (recorded rate)
  kAdmission,  // RX-side admission control rejects before ring/pool entry
};

/// Why the system dropped a frame — the taxonomy reported through
/// `LvrmSystem::set_drop_hook`, one cause per drop site, so conservation
/// (delivered + every cause == offered) is checkable per flow class.
enum class DropCause {
  kRxRingFull,      // ingress: shard RX ring tail-drop
  kPoolExhausted,   // ingress: descriptor frame pool ran dry
  kAdmissionReject, // ingress: overload ladder level 2 rejected the flow
  kSampledShed,     // dispatch: flow outside the sampling subset (level 1+)
  kShedDropNewest,  // classic watermark shed: arriving frame dropped
  kShedDropOldest,  // classic watermark shed: queue head evicted
  kQueueFull,       // data queue (in or out) refused the push
  kUnclassified,    // no VR / no active VRI for the frame
  kVriInactive,     // dispatched to a VRI that deactivated in flight
  kVriDestroyed,    // queued in a VRI torn down without a drain
  kNoRoute,         // the VR's routing table had no entry
  kVrPolicy,        // a stateful VR refused the frame (firewall deny,
                    // rate-limit throttle, NAT port-pool exhaustion)
};

/// Why a reset-free VRI drain started (DESIGN.md §13).
enum class DrainCause {
  kAllocatorDestroy,  // the Fig 3.2 destroy path, draining instead of dropping
  kDecommission,      // explicit operator decommission_vri()
  kFailSlow,          // health quarantine of a live-but-slow process
};

std::string to_string(AdapterKind k);
std::string to_string(AllocatorKind k);
std::string to_string(BalancerKind k);
std::string to_string(BalancerGranularity k);
std::string to_string(EstimatorKind k);
std::string to_string(AffinityPolicy k);
std::string to_string(VrKind k);
std::string to_string(VriHealth k);
std::string to_string(FaultKind k);
std::string to_string(ShedPolicy k);
std::string to_string(OverloadLevel k);
std::string to_string(DropCause k);
std::string to_string(DrainCause k);

}  // namespace lvrm
