// types.hpp — the enumerations naming LVRM's extensibility dimensions.
//
// Chapter 3 structures LVRM as a set of components each supporting "different
// variants of implementation": the socket adapter (3.1), core allocation
// (3.2), load balancing (3.3), load estimation (3.4) and the IPC queue (3.5).
// Every dimension is an enum here plus an interface elsewhere in this
// directory; the test suite asserts all combinations compose.
#pragma once

#include <string>

namespace lvrm {

/// Socket adapter variants (Sec 3.1).
enum class AdapterKind {
  kRawSocket,  // BSD raw socket, recvfrom()/send() syscalls
  kPfRing,     // PF_RING-style zero-copy NIC polling (LVRM v1.1: both ways)
  kMemory,     // trace replay from main memory (Exp 1c/1d)
};

/// Core allocation approaches (Sec 3.2, Fig 3.2).
enum class AllocatorKind {
  kFixed,                    // pre-assigned core set at VR start
  kDynamicFixedThreshold,    // EWMA arrival rate vs. per-core rate thresholds
  kDynamicDynamicThreshold,  // arrival rate vs. measured VRI service rate
};

/// Load balancing schemes (Sec 3.3, Fig 3.3).
enum class BalancerKind {
  kJoinShortestQueue,
  kRoundRobin,
  kRandom,
};

/// Frame-based vs flow-based dispatch (Sec 3.3).
enum class BalancerGranularity {
  kFrame,  // every frame balanced independently
  kFlow,   // 5-tuple pinning via the connection-tracking table
};

/// Load estimation variants (Sec 3.4, Fig 3.4).
enum class EstimatorKind {
  kQueueLength,   // EWMA of the VRI's incoming data-queue length
  kArrivalTime,   // EWMA of inter-arrival gaps (reported as a rate)
};

/// Core affinity policies examined by Exp 2a.
enum class AffinityPolicy {
  kSibling,     // prefer cores on LVRM's socket
  kNonSibling,  // prefer cores on the other socket
  kDefault,     // let the (simulated) kernel place and migrate the VRI
  kSame,        // run the VRI on LVRM's own core
};

/// Hosted VR implementations (Sec 3.8).
enum class VrKind {
  kCpp,    // minimal C++ forwarder
  kClick,  // Click Modular Router element graph
};

std::string to_string(AdapterKind k);
std::string to_string(AllocatorKind k);
std::string to_string(BalancerKind k);
std::string to_string(BalancerGranularity k);
std::string to_string(EstimatorKind k);
std::string to_string(AffinityPolicy k);
std::string to_string(VrKind k);

}  // namespace lvrm
