#include "lvrm/system.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>
#include <optional>

#include "common/log.hpp"
#include "net/flow.hpp"
#include "net/state_record.hpp"
#include "sim/costs.hpp"
#include "vr/factory.hpp"
#include "vr/stateful.hpp"

namespace lvrm {

namespace costs = sim::costs;
using sim::CostCategory;

/// output_if value a stateful VR sets when its admission step refuses a
/// frame (vs. -1, a routing miss). Aliased here so the drop site does not
/// spell the nested name next to locals called `vr`.
constexpr std::int32_t kPolicyDropIf = vr::StatefulVrBase::kPolicyDrop;

// --- internal structures --------------------------------------------------------

/// VRI adapter + LVRM adapter + the VRI process itself: queues, estimator,
/// service-rate measurement, and the poll loop pinned to the VRI's core.
struct LvrmSystem::VriSlot {
  int vr_id = -1;
  int index = -1;
  bool active = false;
  sim::CoreId core_id = sim::kNoCore;
  Nanos activated_at = 0;
  Nanos cold_until = 0;  // post-migration cold-cache window (default policy)

  std::unique_ptr<sim::BoundedQueue<net::FrameCell>> data_in;
  std::unique_ptr<sim::BoundedQueue<net::FrameCell>> data_out;
  std::unique_ptr<sim::BoundedQueue<net::FrameCell>> ctrl_in;
  std::unique_ptr<sim::BoundedQueue<net::FrameCell>> ctrl_out;
  std::unique_ptr<sim::PollServer<net::FrameCell>> server;
  std::unique_ptr<VirtualRouter> router;
  std::unique_ptr<LoadEstimator> estimator;

  /// Sec 3.6: the LVRM adapter estimates the VRI's service rate from the
  /// time between consecutive fromLVRM() calls; here: EWMA of per-frame
  /// service cost, inverted into frames/s on demand.
  AlphaEwma service_time{0.2};

  std::uint64_t processed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t no_route = 0;
  bool crashed = false;
  /// Reset-free drain quiesce in flight (DESIGN.md §13): the server is
  /// stopped but the slot keeps accepting pinned-flow frames until the
  /// in-service frame has egressed — then the backlog migrates atomically.
  bool draining = false;

  /// Dispatcher shard owning this slot's LVRM-side queue ends (control
  /// relay + TX drain) and anchoring its core placement (DESIGN.md §11).
  int home_shard = 0;
  /// NUMA distance of the current core pick relative to the home shard.
  NumaTier numa_tier = NumaTier::kNone;

  // Fault-injection / health state (robustness layer).
  bool hung = false;            // process alive but frozen (never reaped)
  double degrade = 1.0;         // injected service-cost multiplier
  double ctrl_loss_prob = 0.0;  // injected control-relay drop probability
  bool suspect = false;         // inside the fail-slow grace window
  bool needs_rebuild = false;   // next activation forks a fresh process

  queue::SegmentId shm_ids[4] = {queue::kInvalidSegment, queue::kInvalidSegment,
                                 queue::kInvalidSegment, queue::kInvalidSegment};
  sim::EventId migration_event = sim::kInvalidEvent;

  // §17 work stealing. Input indices let thieves repair the right hint on
  // the right server after an external pop; `steal_inflight` counts stolen
  // TX frames not yet egressed — the home server's drain gate stays closed
  // while it is non-zero, so newer same-slot frames cannot overtake the
  // stolen burst. `steal_timer_armed` dedups the idle re-poll timer.
  std::size_t data_in_input = 0;   // data_in's index on this slot's server
  std::size_t data_out_input = 0;  // data_out's index on the home server
  std::size_t steal_inflight = 0;
  bool steal_timer_armed = false;

  /// Frames the slot's stateful VR refused (§16 policy drops; 0 for the
  /// stateless thesis VRs, which never refuse).
  std::uint64_t policy_drops = 0;
};

/// §16 TX sequencer state for one sprayed flow: frames may complete on any
/// VRI, so TX release is keyed by the spray sequence number stamped at
/// dispatch. `held` parks out-of-order completions (nullopt = a tombstone
/// for a frame that dropped in flight, so the gap it leaves releases).
struct LvrmSystem::SeqOut {
  std::uint32_t next = 0;  // next sequence number eligible to egress
  // Held positions ahead of the cursor: a frame waiting for its turn, or a
  // nullopt tombstone for a position whose frame was dropped. Tombstones
  // hold no frame, so only `live` counts against the reorder window — under
  // overload a deep queue legitimately accumulates thousands of tombstoned
  // positions (dropped at enqueue, resolved only once the cursor crawls
  // past) without a single frame being held.
  std::map<std::uint32_t, std::optional<net::FrameMeta>> held;
  std::size_t live = 0;  // held entries that carry a frame
  Nanos last_activity = 0;
};

/// VR monitor state: configuration, the VRI monitor's dispatcher, and the
/// EWMA arrival-rate measurement driving core allocation.
struct LvrmSystem::VrState {
  int id = -1;
  VrConfig cfg;
  std::vector<std::unique_ptr<VriSlot>> slots;
  std::vector<int> active_order;  // activation order; destroy pops the back
  /// One dispatcher per shard (index == shard id): flow tables are
  /// partitioned by the ingress shard hash, so shards never share balancer
  /// state. dispatchers[0] is the paper's single dispatcher.
  std::vector<std::unique_ptr<Dispatcher>> dispatchers;

  /// Summed per-shard dispatcher counters (gauges and audit summaries).
  DispatchStats dispatch_stats() const {
    DispatchStats total;
    for (const auto& d : dispatchers) total += d->stats();
    return total;
  }
  PaperEwma arrival_gap{7.0};
  Nanos last_arrival = -1;
  Nanos pipeline_latency = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t data_drops = 0;
  std::uint64_t shed_drops = 0;

  // Telemetry bookkeeping (audit trail; see DESIGN.md §10). A shedding
  // episode opens on the first shed frame and closes at the first
  // allocation pass that saw no further shedding.
  bool shed_open = false;
  Nanos shed_start = 0;
  std::uint64_t shed_at_open = 0;
  std::uint64_t shed_last_seen = 0;
  double shed_rate = 0.0;
  double shed_service = 0.0;
  // Balancer-summary deltas between allocation passes.
  std::uint64_t summary_decisions = 0;
  std::uint64_t summary_hits = 0;

  // Degradation ladder (DESIGN.md §13; all zero/normal unless
  // `overload_control.enabled`). The window counters drive the pressure
  // measurement that escalates or relaxes the sampling rate.
  OverloadLevel level = OverloadLevel::kNormal;
  double sample_rate = 1.0;   // fraction of flows admitted past the subset
  int escalations = 0;        // consecutive escalating windows
  Nanos win_start = -1;       // current adaptation window's start
  std::uint64_t win_frames = 0;     // frames seen this window
  std::uint64_t win_pressured = 0;  // of those, arrivals at a hot queue
  std::uint64_t sampled_shed = 0;       // level-1 drops (out of subset)
  std::uint64_t admission_rejected = 0; // level-2 drops (RX-side reject)
  /// Bias-corrected offered-load estimate: +1/rate per subset-passing frame.
  double offered_estimate = 0.0;

  /// Every dynamic route update applied since start, in order; replayed into
  /// respawned VRIs so a fresh process starts consistent with its siblings.
  std::vector<route::RouteUpdate> route_log;

  // §16 state replication (touched only when state_replication.enabled).
  struct TupleHash {
    std::size_t operator()(const net::FiveTuple& t) const {
      return static_cast<std::size_t>(net::hash_tuple(t));
    }
  };
  /// One sprayed (or spray-pending) flow. Pending frames are stamped with
  /// spray metadata but stay pinned to the owner — every unstamped frame of
  /// the flow is already FIFO-ahead of them in the owner's queue, so the
  /// transition cannot reorder. Active frames pick per-frame by load.
  struct SprayState {
    enum class Phase : std::uint8_t { kPending, kActive };
    Phase phase = Phase::kPending;
    std::uint32_t id = 0;         // spray-flow id; keys the TX sequencer
    int owner = -1;               // VRI that owned the pin at promotion
    int shard = 0;                // dispatch shard steering the flow
    std::uint32_t next_seq = 0;   // next spray sequence number to stamp
    std::uint64_t frames = 0;     // frames sprayed over the lifetime
    std::uint64_t delta_seq = 0;  // delta_period gating counter
    Nanos last_frame = 0;         // idle-expiry clock
    double rate_fps = 0.0;        // detected rate at promotion
  };
  std::unordered_map<net::FiveTuple, SprayState, TupleHash> sprays;
  /// TX sequencers, keyed by spray-flow id — NOT the 5-tuple: a NAT VR
  /// rewrites the tuple in flight, so the dispatch-side tuple no longer
  /// matches the frame at TX. The stamped id survives translation.
  std::unordered_map<std::uint32_t, SeqOut> seq_out;
  /// Heavy-hitter detection: fixed hash-indexed per-window frame counts.
  /// Collisions can only over-count (promote early), never miss a true
  /// elephant, so a fixed array is safe at any flow count.
  static constexpr std::size_t kHhSlots = 512;
  std::array<std::uint64_t, kHhSlots> hh_counts{};
  std::array<std::uint64_t, kHhSlots> hh_window{};

  /// Healthy-pool generation mirrored into every shard dispatcher (seeded
  /// to 1 in add_vr — 0 means cache-off standalone semantics).
  std::uint64_t pool_generation = 1;
};

/// Pre-registered hot-path metric handles plus snapshot bookkeeping. The
/// data-path cost of telemetry is exactly: one null check on `obs_`, one
/// relaxed counter add per RX/TX frame, and — for the sampled 1-in-N subset
/// only — three histogram adds at TX. Everything else (gauges, queue depths,
/// dispatcher/poll-server counters) is read from existing accounting at
/// snapshot time.
struct LvrmSystem::ObsHooks {
  obs::Counter rx_frames;
  obs::Counter tx_frames;
  obs::LogHistogram queue_wait_ns;   // RX enqueue -> VRI service start
  obs::LogHistogram vri_service_ns;  // VRI service start -> done
  obs::LogHistogram e2e_ns;          // gateway in -> gateway out
  // Per-shard RX/TX counters, labeled shard="<id>". Populated only when
  // dispatch_shards > 1 (empty vectors keep the single-shard hot path and
  // export byte-identical to the unsharded build).
  std::vector<obs::Counter> shard_rx;
  std::vector<obs::Counter> shard_tx;
  // Frame-pool exhaustion drops (descriptor mode only; registered only when
  // `descriptor_rings` is on so classic exports stay byte-identical).
  obs::Counter pool_exhausted;
  // Per-shard exhaustion breakdown, labeled shard="<id>" (sharded plane +
  // descriptor mode only — same byte-identity rule as shard_rx/shard_tx).
  std::vector<obs::Counter> pool_exhausted_shard;
  // Degradation-ladder drop counters (registered only when
  // `overload_control.enabled`, keeping ladder-off exports byte-identical).
  obs::Counter sampled_shed;
  obs::Counter admission_rejected;
  // Flow-table probe length in buckets touched (registered only when
  // `flow_table_v2` is on — the classic-table export stays byte-identical).
  obs::LogHistogram flow_probe_len;
  // §16 replication counters (registered only when
  // `state_replication.enabled` — defaults-off exports stay byte-identical).
  obs::Counter sprayed_frames;
  obs::Counter spray_activations;
  obs::Counter deltas_sent;
  obs::Counter deltas_applied;
  obs::Counter seq_holds;
  obs::Counter seq_gap_skips;
  obs::Counter seq_window_overflow;
  // §17 work-stealing counters (registered only when `work_stealing` is on
  // over the fabric — defaults-off exports stay byte-identical).
  obs::Counter tx_steals;
  obs::Counter tx_steal_frames;
  obs::Counter vri_steals;
  obs::Counter vri_steal_frames;
  Nanos last_snapshot = 0;
};

// --- construction -----------------------------------------------------------------

LvrmSystem::LvrmSystem(sim::Simulator& sim, const sim::CpuTopology& topo,
                       LvrmConfig config)
    : sim_(sim), topo_(topo), config_(config), rng_(config.seed) {
  // §17: stealing is defined over the fabric's MPMC links; without the
  // fabric the gate is inert (documented in README's config table).
  fabric_ = config_.mpmc_fabric;
  stealing_ = fabric_ && config_.work_stealing;
  for (sim::CoreId c = 0; c < topo_.total_cores(); ++c)
    cores_.push_back(
        std::make_unique<sim::Core>(sim_, c, costs::kContextSwitch));
  core_used_.assign(static_cast<std::size_t>(topo_.total_cores()), false);
  core_used_[static_cast<std::size_t>(config_.lvrm_core)] = true;

  // The dispatch plane (DESIGN.md §11): shard 0 is the paper's single LVRM
  // process; further shards replicate the adapter + RX ring + poll loop on
  // their own cores, spread round-robin across sockets.
  const int n_shards = std::max(1, config_.dispatch_shards);
  auto adapters = make_adapters(config_.adapter, n_shards);
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    DispatchShard shard;
    shard.id = s;
    shard.core_id = s == 0 ? config_.lvrm_core : pick_shard_core(s);
    shard.adapter = std::move(adapters[static_cast<std::size_t>(s)]);
    const std::string suffix = s == 0 ? "" : "/s" + std::to_string(s);
    shard.rx_ring = std::make_unique<FrameQueue>(
        shard.adapter->ring_capacity(), "rx-ring" + suffix);
    shard.server = std::make_unique<FrameServer>(
        sim_, core(shard.core_id), /*owner=*/s, "lvrm" + suffix,
        costs::kPollDiscovery);
    shards_.push_back(std::move(shard));
  }

  allocator_ = make_allocator(config_.allocator, config_.per_vri_capacity_fps,
                              config_.destroy_hysteresis);
  if (config_.health.enabled)
    health_ = std::make_unique<HealthMonitor>(config_.health);

  if (config_.telemetry.enabled) {
    telemetry_ = std::make_unique<obs::Telemetry>(config_.telemetry);
    obs_ = std::make_unique<ObsHooks>();
    auto& m = telemetry_->metrics();
    obs_->rx_frames = m.counter("lvrm_rx_frames_total");
    obs_->tx_frames = m.counter("lvrm_tx_frames_total");
    obs_->queue_wait_ns = m.histogram("lvrm_queue_wait_ns");
    obs_->vri_service_ns = m.histogram("lvrm_vri_service_ns");
    obs_->e2e_ns = m.histogram("lvrm_e2e_latency_ns");
    if (n_shards > 1) {
      // Per-shard RX/TX counters exist only on a sharded plane, so the
      // single-shard export stays byte-identical to the unsharded build.
      for (int s = 0; s < n_shards; ++s) {
        const std::string l = "shard=\"" + std::to_string(s) + "\"";
        obs_->shard_rx.push_back(m.counter("lvrm_rx_frames_total", l));
        obs_->shard_tx.push_back(m.counter("lvrm_tx_frames_total", l));
      }
    }
    if (config_.descriptor_rings) {
      obs_->pool_exhausted = m.counter("lvrm_frame_pool_exhausted_total");
      if (n_shards > 1) {
        for (int s = 0; s < n_shards; ++s)
          obs_->pool_exhausted_shard.push_back(
              m.counter("lvrm_frame_pool_exhausted_total",
                        "shard=\"" + std::to_string(s) + "\""));
      }
    }
    if (config_.overload_control.enabled) {
      obs_->sampled_shed = m.counter("lvrm_sampled_shed_total");
      obs_->admission_rejected = m.counter("lvrm_admission_rejected_total");
    }
    if (config_.flow_table_v2) {
      obs_->flow_probe_len = m.histogram("lvrm_flowtable_probe_len");
    }
    if (config_.state_replication.enabled) {
      obs_->sprayed_frames = m.counter("lvrm_sprayed_frames_total");
      obs_->spray_activations = m.counter("lvrm_spray_activations_total");
      obs_->deltas_sent = m.counter("lvrm_state_deltas_sent_total");
      obs_->deltas_applied = m.counter("lvrm_state_deltas_applied_total");
      obs_->seq_holds = m.counter("lvrm_seq_holds_total");
      obs_->seq_gap_skips = m.counter("lvrm_seq_gap_skips_total");
      obs_->seq_window_overflow = m.counter("lvrm_seq_window_overflow_total");
    }
    if (stealing_) {
      // §17 steal counters exist only with work stealing on, so a
      // stealing-off export stays byte-identical to earlier builds.
      obs_->tx_steals = m.counter("lvrm_tx_steals_total");
      obs_->tx_steal_frames = m.counter("lvrm_tx_steal_frames_total");
      obs_->vri_steals = m.counter("lvrm_vri_steals_total");
      obs_->vri_steal_frames = m.counter("lvrm_vri_steal_frames_total");
    }
  }
  replication_ = config_.state_replication.enabled;

  // §15 tracing: per-shard flight recorders + adaptive span sampling. The
  // trace gauges are published only when this exists (publish_gauges), so
  // tracing-off exports stay byte-identical.
  if (config_.tracing.enabled)
    tracer_ = std::make_unique<obs::Tracer>(config_.tracing, n_shards);

  // The RX ring and each VRI's outgoing queue are drained in bursts of
  // poll_batch (PF_RING-style batched polls); control queues are serviced
  // per item at higher priority. With the batched hot path the burst is
  // coalesced into one core event and dispatched through
  // Dispatcher::dispatch_batch (DESIGN.md §9). `shards_` is never resized
  // after construction, so the captured shard pointers stay valid.
  for (DispatchShard& shard : shards_) {
    DispatchShard* sh = &shard;
    shard.server->add_input(
        *shard.rx_ring, /*priority=*/1,
        [this, sh](net::FrameCell& c) { return rx_cost(meta_of(c), *sh); },
        [this](net::FrameCell&& c) { rx_sink(std::move(c)); },
        shard.adapter->recv_category(), config_.poll_batch,
        /*coalesce=*/config_.batched_hot_path,
        config_.batched_hot_path
            ? FrameServer::BatchCostFn([this, sh](std::span<net::FrameCell> cs) {
                return rx_cost_batch(cs, *sh);
              })
            : FrameServer::BatchCostFn{});
  }

  // §17 MPMC fabric: TX collapses from one drain ring per (shard, VRI) pair
  // to ONE per-home-shard MPMC link all of that shard's slots feed. In the
  // simulation the per-slot BoundedQueues persist as the link's per-producer
  // claimed segments (each producer's burst occupies a contiguous claimed
  // sub-region, so per-producer FIFO sub-queues model the link exactly);
  // only the arena topology and the stealing capability change, which keeps
  // fabric-on byte-identical to fabric-off while work_stealing is off.
  if (fabric_) {
    const std::size_t elem = config_.descriptor_rings
                                 ? sizeof(net::FrameHandle)
                                 : sizeof(net::FrameMeta);
    for (DispatchShard& shard : shards_) {
      shard.tx_link_shm = arena_.create(config_.data_queue_capacity * elem);
      if (!stealing_) continue;
      DispatchShard* sh = &shard;
      const std::string suffix =
          shard.id == 0 ? "" : "/s" + std::to_string(shard.id);
      // Staging queue for bursts stolen off other shards' TX links. It is a
      // pool-slot-neutral hop: frames enter by move from the victim's drain
      // and leave through the same take_cell/finish_tx path, so conservation
      // holds (tested in test_system_fabric).
      shard.tx_steal_q = std::make_unique<FrameQueue>(
          config_.data_queue_capacity, "tx-steal" + suffix);
      shard.tx_steal_input = shard.server->add_input(
          *shard.tx_steal_q, /*priority=*/1,
          [this, sh](net::FrameCell& c) {
            const net::FrameMeta& f = meta_of(c);
            Nanos cost = costs::kDequeueCost + sh->adapter->send_cost(f);
            Nanos user_part = costs::kDequeueCost;
            // The producer is the victim VRI's core, not a dispatcher's.
            const VriSlot* victim = steal_victim_slot(f);
            if (victim && cross_socket(victim->core_id, sh->core_id)) {
              cost += costs::kCrossSocketQueueOp;
              user_part += costs::kCrossSocketQueueOp;
            }
            if (sh->adapter->send_category() != CostCategory::kUser)
              core(sh->core_id)
                  .reclassify(sh->adapter->send_category(),
                              CostCategory::kUser, user_part);
            return cost;
          },
          [this, sh](net::FrameCell&& c) {
            net::FrameMeta f = take_cell(std::move(c));
            f.gw_out_at = sim_.now();
            VriSlot* victim = steal_victim_slot(f);
            VrState* v = victim ? vrs_[static_cast<std::size_t>(victim->vr_id)]
                                      .get()
                                : nullptr;
            if (victim && victim->steal_inflight > 0 &&
                --victim->steal_inflight == 0) {
              // Last stolen frame egressed: reopen the victim's own drain
              // (the gate held it closed so nothing could overtake).
              shards_[static_cast<std::size_t>(victim->home_shard)]
                  .server->kick(victim->data_out_input);
            }
            if (!v) return;  // victim VR gone (cannot happen today)
            if (replication_ && f.sprayed) {
              sequence_tx(*v, std::move(f));
              return;
            }
            finish_tx(*v, std::move(f));
          },
          shard.adapter->send_category(), config_.poll_batch,
          /*coalesce=*/config_.batched_hot_path);
      shard.server->set_idle_hook([this, sh] { return try_tx_steal(*sh); });
    }
  }
}

LvrmSystem::~LvrmSystem() {
  for (auto& vr : vrs_)
    for (auto& slot : vr->slots)
      if (slot->migration_event != sim::kInvalidEvent)
        sim_.cancel(slot->migration_event);
}

int LvrmSystem::add_vr(VrConfig vr_config) {
  assert(!started_ && "add_vr must be called before start()");
  auto vr = std::make_unique<VrState>();
  vr->id = static_cast<int>(vrs_.size());
  vr->arrival_gap = PaperEwma(config_.ewma_weight);
  vr->cfg = std::move(vr_config);
  if (vr->cfg.route_map.empty()) vr->cfg.route_map = default_route_map();
  if (vr->cfg.subnets.empty())
    vr->cfg.subnets.push_back(net::Prefix{net::ipv4(10, 1, 0, 0), 16});

  // One dispatcher per shard. Shard 0 keeps the historical seed so the
  // single-shard balancer stream is unchanged; later shards derive their
  // own independent streams.
  for (int s = 0; s < shard_count(); ++s) {
    vr->dispatchers.push_back(std::make_unique<Dispatcher>(
        make_balancer(config_.balancer,
                      config_.seed + 17 * static_cast<std::uint64_t>(vr->id) +
                          7919 * static_cast<std::uint64_t>(s)),
        config_.granularity, sec(30), config_.flow_table_v2,
        config_.flow_table_capacity));
    // Healthy-pool generation cache: the system owns the candidate set, so
    // it seeds a non-zero generation and bumps it on every health change.
    vr->dispatchers.back()->set_pool_generation(vr->pool_generation);
    if (config_.flow_table_v2 && telemetry_) {
      Dispatcher* d = vr->dispatchers.back().get();
      d->set_probe_histogram(obs_->flow_probe_len);
      // flowtable_resize audit events: one per classic rehash, one per v2
      // migration start/finish — never per migration step, so a 16M-entry
      // resize cannot flood the bounded trail.
      const int vr_id = vr->id;
      d->set_flow_resize_hook([this, vr_id, s](const net::FlowResizeEvent& ev) {
        obs::AuditEvent e;
        e.time = e.until = sim_.now();
        e.kind = obs::AuditKind::kFlowTableResize;
        e.vr = static_cast<std::int16_t>(vr_id);
        e.shard = static_cast<std::int16_t>(s);
        e.cause = static_cast<std::uint8_t>(ev.cause);
        e.a = ev.buckets_before;
        e.b = ev.buckets_after;
        e.c = ev.migrated;
        telemetry_->audit().record(e);
      });
    }
  }

  const int max_vris = std::max(config_.max_vris_per_vr, vr->cfg.initial_vris);
  for (int i = 0; i < max_vris; ++i) {
    auto slot = std::make_unique<VriSlot>();
    VriSlot* s = slot.get();
    VrState* v = vr.get();
    s->vr_id = vr->id;
    s->index = i;
    // Static home shard: owns this slot's LVRM-side queue ends. Spreading
    // by (vr, index) keeps each shard's TX/control load even; with one
    // shard this is always 0.
    s->home_shard = (vr->id + i) % shard_count();
    const std::string base =
        vr->cfg.name + "/vri" + std::to_string(i);
    s->data_in = std::make_unique<FrameQueue>(config_.data_queue_capacity,
                                              base + "/data-in");
    s->data_out = std::make_unique<FrameQueue>(config_.data_queue_capacity,
                                               base + "/data-out");
    s->ctrl_in = std::make_unique<FrameQueue>(config_.control_queue_capacity,
                                              base + "/ctrl-in");
    s->ctrl_out = std::make_unique<FrameQueue>(config_.control_queue_capacity,
                                               base + "/ctrl-out");
    // One shared-memory segment per queue, as in Sec 3.8: the identifiers
    // are what a forked VRI would receive via its main() arguments.
    if (fabric_) {
      // §17 fabric layout: one MPMC ingress link every shard feeds
      // (shm_ids[0] — a handle link in descriptor mode, so it shrinks to
      // 4 bytes/elem), two control rings sized to the control capacity
      // instead of the data capacity, and NO per-slot TX segment: egress
      // rides the home shard's shared tx_link_shm.
      const std::size_t elem = config_.descriptor_rings
                                   ? sizeof(net::FrameHandle)
                                   : sizeof(net::FrameMeta);
      s->shm_ids[0] = arena_.create(config_.data_queue_capacity * elem);
      s->shm_ids[1] = arena_.create(config_.control_queue_capacity *
                                    sizeof(net::FrameMeta));
      s->shm_ids[2] = arena_.create(config_.control_queue_capacity *
                                    sizeof(net::FrameMeta));
      s->shm_ids[3] = queue::kInvalidSegment;
    } else {
      for (int q = 0; q < 4; ++q)
        s->shm_ids[q] = arena_.create(config_.data_queue_capacity *
                                      sizeof(net::FrameMeta));
    }

    // The factory honors kind + click_script/click_use_graph and wraps the
    // stateful kinds (NAT / firewall / rate limit) around their configured
    // inner engine (§16).
    s->router = make_configured_vr(vr->cfg, vr->cfg.route_map);
    if (i == 0) vr->pipeline_latency = s->router->pipeline_latency();
    s->estimator = make_estimator(config_.estimator, config_.ewma_weight);

    // The VRI's poll loop; parked on the LVRM core until activated (the
    // placement is decided at activation time by the affinity policy).
    s->server = std::make_unique<FrameServer>(
        sim_, lvrm_core(), /*owner=*/100 + vr->id * 16 + i, base,
        costs::kPollDiscovery);

    // Control queue first: higher priority than data (Sec 2.1).
    s->server->add_input(
        *s->ctrl_in, /*priority=*/0,
        [this](net::FrameCell& c) {
          const net::FrameMeta& f = meta_of(c);
          // §16 state deltas ride the control rings but arrive per sprayed
          // frame, not per control event — charging them the full control
          // cost would saturate the sibling cores on delta traffic alone.
          if (f.kind == net::FrameKind::kStateDelta)
            return costs::kStateDeltaApply;
          return costs::kControlEventFixed +
                 static_cast<Nanos>(costs::kControlEventPerByte *
                                    f.wire_bytes);
        },
        [this](net::FrameCell&& c) {
          const net::FrameMeta f = take_cell(std::move(c));
          const auto it = control_cbs_.find(f.id);
          if (it != control_cbs_.end()) {
            auto cb = std::move(it->second);
            control_cbs_.erase(it);
            if (cb) cb(sim_.now() - f.created_at);
          }
        },
        CostCategory::kUser);

    s->data_in_input = s->server->add_input(
        *s->data_in, /*priority=*/1,
        [this, s, v](net::FrameCell& c) {
          net::FrameMeta& f = meta_of(c);
          if (f.obs_sampled) f.obs_svc_at = sim_.now();
          if (tracer_)
            tracer_->record(f.dispatch_shard, obs::TraceHop::kVriStart, f.id,
                            s->vr_id, s->index, sim_.now(), 0,
                            f.obs_sampled != 0);
          Nanos cost = costs::kDequeueCost;
          // The queue's producer is the shard that dispatched the frame
          // (carried in the frame); crossing its socket costs a cache-line
          // transfer per op, exactly as with the single dispatcher.
          const sim::CoreId producer =
              f.dispatch_shard >= 0
                  ? shards_[static_cast<std::size_t>(f.dispatch_shard)].core_id
                  : shards_[static_cast<std::size_t>(s->home_shard)].core_id;
          if (cross_socket(s->core_id, producer))
            cost += costs::kCrossSocketQueueOp;
          if (!s->router->process(f) && f.output_if != kPolicyDropIf)
            f.output_if = -1;  // routing miss (vs. a stateful policy refuse)
          const Nanos work = static_cast<Nanos>(
              static_cast<double>(s->router->process_cost(f) +
                                  v->cfg.dummy_load) *
              v->cfg.service_multiplier * s->degrade);
          cost += work + costs::kEnqueueCost;
          // §16: the stateful step may have changed per-flow state — relay
          // the queued deltas to the active siblings while the frame is
          // still in service (emit cost charged here, apply cost at the
          // sibling's ctrl_in).
          if (replication_ && f.sprayed && s->router->stateful())
            cost += static_cast<Nanos>(relay_deltas(*v, *s)) *
                    costs::kStateDeltaEmit;
          s->service_time.update(static_cast<double>(cost));
          return cost;
        },
        [this, s, v](net::FrameCell&& c) {
          net::FrameMeta& f = meta_of(c);
          ++s->processed;
          if (f.obs_sampled) f.obs_done_at = sim_.now();
          if (tracer_)
            tracer_->record(f.dispatch_shard, obs::TraceHop::kVriEnd, f.id,
                            s->vr_id, s->index, sim_.now(), 0,
                            f.obs_sampled != 0);
          if (f.output_if < 0) {
            if (f.output_if == kPolicyDropIf) {
              ++s->policy_drops;
              note_drop(f, DropCause::kVrPolicy);
            } else {
              ++s->no_route;
              note_drop(f, DropCause::kNoRoute);
            }
            drop_cell(std::move(c));
            return;
          }
          if (v->pipeline_latency > 0) {
            // The Click VR's internal Queue element delays the frame without
            // consuming extra CPU (Fig 4.6's higher latency).
            sim_.after(v->pipeline_latency, [this, s, v, c = std::move(c)]() mutable {
              if (!push_cell_or_note(*s->data_out, std::move(c),
                                     DropCause::kQueueFull))
                ++v->data_drops;
              else
                maybe_poke_tx_thieves(*s);
            });
          } else if (!push_cell_or_note(*s->data_out, std::move(c),
                                        DropCause::kQueueFull)) {
            ++v->data_drops;
          } else {
            maybe_poke_tx_thieves(*s);
          }
        },
        CostCategory::kUser);

    // LVRM-side inputs for this slot — control relay and TX — live on the
    // slot's home shard's poll loop (shard 0 with dispatch_shards=1).
    DispatchShard& home = shards_[static_cast<std::size_t>(s->home_shard)];
    home.server->add_input(
        *s->ctrl_out, /*priority=*/0,
        [this, s, &home](net::FrameCell& c) {
          Nanos cost = costs::kDequeueCost + costs::kEnqueueCost +
                       static_cast<Nanos>(costs::kControlRelayPerByte *
                                          meta_of(c).wire_bytes);
          if (cross_socket(s->core_id, home.core_id))
            cost += costs::kCrossSocketQueueOp;
          return cost;
        },
        [this, v](net::FrameCell&& c) {
          const net::FrameMeta& f = meta_of(c);
          const std::uint64_t id = f.id;
          const int dst = f.dispatch_vri;
          if (dst < 0 || dst >= static_cast<int>(v->slots.size())) {
            ++control_drops_;
            control_cbs_.erase(id);
            drop_cell(std::move(c));
            return;
          }
          VriSlot& target = *v->slots[static_cast<std::size_t>(dst)];
          if (target.ctrl_loss_prob > 0.0 &&
              rng_.uniform01() < target.ctrl_loss_prob) {
            // Injected lossy control path: the event vanishes in transit.
            ++control_drops_;
            control_cbs_.erase(id);
            drop_cell(std::move(c));
            return;
          }
          if (!push_cell(*target.ctrl_in, std::move(c))) {
            ++control_drops_;
          }
        },
        CostCategory::kUser);

    s->data_out_input = home.server->add_input(
        *s->data_out, /*priority=*/1,
        [this, s, &home](net::FrameCell& c) {
          Nanos cost = costs::kDequeueCost + home.adapter->send_cost(meta_of(c));
          Nanos user_part = costs::kDequeueCost;
          if (cross_socket(s->core_id, home.core_id)) {
            cost += costs::kCrossSocketQueueOp;
            user_part += costs::kCrossSocketQueueOp;
          }
          if (home.adapter->send_category() != CostCategory::kUser)
            core(home.core_id)
                .reclassify(home.adapter->send_category(),
                            CostCategory::kUser, user_part);
          return cost;
        },
        [this, v](net::FrameCell&& c) {
          // TX completion: the frame leaves the IPC plane here, so a pooled
          // slot is recycled now ("free once at TX completion"). Sprayed
          // frames (§16) detour through the per-flow sequencer, which
          // restores external arrival order before finish_tx releases them.
          net::FrameMeta f = take_cell(std::move(c));
          f.gw_out_at = sim_.now();
          if (replication_ && f.sprayed) {
            sequence_tx(*v, std::move(f));
            return;
          }
          finish_tx(*v, std::move(f));
        },
        home.adapter->send_category(), config_.poll_batch,
        // Batched hot path: the TX burst is one coalesced core event; the
        // per-item cost fn above is summed over the drained frames.
        /*coalesce=*/config_.batched_hot_path);

    if (stealing_) {
      // §17: while a TX-steal is in flight the victim's own drain is held
      // closed, so the stolen (older) burst cannot be overtaken by newer
      // frames from the same slot — TX order per slot stays exact. The gate
      // intentionally leaves the nonempty hint intact; kick() reopens it.
      home.server->set_input_gate(s->data_out_input,
                                  [s] { return s->steal_inflight == 0; });
      // Idle-VRI data-plane stealing: when this slot's own queues are dry
      // its poll loop scans same-VR siblings for unpinned backlog.
      s->server->set_idle_hook(
          [this, v, s] { return try_vri_steal(*v, *s); });
    }

    vr->slots.push_back(std::move(slot));
  }

  vrs_.push_back(std::move(vr));
  return static_cast<int>(vrs_.size()) - 1;
}

void LvrmSystem::start() {
  assert(!started_);
  started_ = true;
  if (config_.descriptor_rings) {
    std::size_t cap = config_.frame_pool_capacity;
    if (cap == 0) {
      // Auto-size: every RX ring plus every VRI data queue (in + out) full
      // at once, plus slack for frames parked in pipeline-latency timers and
      // the poll servers' in-service slots — exhaustion then cannot precede
      // ordinary queue tail-drop.
      for (const auto& sh : shards_) cap += sh.rx_ring->capacity();
      for (const auto& vr : vrs_)
        cap += vr->slots.size() * 2 * config_.data_queue_capacity;
      cap += 64 * shards_.size() + 1024;
    }
    pool_ = std::make_unique<net::FramePool>(arena_, cap);
  }
  for (auto& vr : vrs_) {
    const int initial = std::max(1, vr->cfg.initial_vris);
    for (int i = 0; i < initial; ++i) activate_vri(*vr);
  }
  for (auto& shard : shards_) shard.server->start();
}

// --- data path ----------------------------------------------------------------------

int LvrmSystem::shard_of(const net::FrameMeta& frame) const {
  if (shards_.size() == 1) return 0;
  // RSS-style steering: the same 5-tuple hash the flow table keys on, so
  // every frame of a flow lands on one shard and per-flow order holds.
  return static_cast<int>(net::hash_tuple(net::FiveTuple::from_frame(frame)) %
                          shards_.size());
}

bool LvrmSystem::ingress(net::FrameMeta frame) {
  frame.gw_in_at = sim_.now();
  // Level-2 admission control (DESIGN.md §13): while any VR sits at
  // kAdmission, its out-of-subset flows are rejected here — before a pool
  // slot or a ring entry is consumed. One int compare when the ladder is
  // idle, so the ingress cost is unchanged with the feature off.
  if (admission_active_ > 0 && admission_reject(frame)) return false;
  const int s = shard_of(frame);
  frame.dispatch_shard = static_cast<std::int16_t>(s);
  DispatchShard& shard = shards_[static_cast<std::size_t>(s)];
  net::FrameCell cell;
  if (pool_) {
    // Descriptor mode: the frame is written into shared memory exactly once
    // here ("allocate once at RX ingress"); every later hop moves a handle.
    const net::FrameHandle h = pool_->acquire();
    if (h == net::kInvalidFrameHandle) {
      on_pool_exhausted(s, frame);
      return false;  // graceful degradation: tail-drop the newest frame
    }
    pool_->at(h) = frame;
    cell = net::FrameCell(h);
  } else {
    cell = net::FrameCell(std::move(frame));
  }
  if (!push_cell_or_note(*shard.rx_ring, std::move(cell),
                         DropCause::kRxRingFull))
    return false;
  ++shard.rx_admitted;
  if (tracer_)
    tracer_->record(s, obs::TraceHop::kRxIngress, frame.id, frame.dispatch_vr,
                    -1, frame.gw_in_at,
                    static_cast<std::uint32_t>(frame.wire_bytes));
  return true;
}

void LvrmSystem::on_pool_exhausted(int shard, const net::FrameMeta& frame) {
  ++pool_exhausted_drops_;
  note_drop(frame, DropCause::kPoolExhausted);
  if (obs_ && config_.descriptor_rings) {
    obs_->pool_exhausted.inc();
    if (!obs_->pool_exhausted_shard.empty())
      obs_->pool_exhausted_shard[static_cast<std::size_t>(shard)].inc();
  }
  // Rate-limited reporting: the counter sees every drop, but the audit
  // trail and the warn log get at most one event per simulated second so a
  // sustained overload cannot flood either.
  const Nanos now = sim_.now();
  if (last_pool_audit_ >= 0 && now - last_pool_audit_ < sec(1)) return;
  last_pool_audit_ = now;
  // §15 black box: pool exhaustion shares the audit rate limit, so a
  // sustained dry pool cannot flood the dump log either.
  if (tracer_)
    trace_flight_dump(obs::FlightDumpCause::kPoolExhausted, shard,
                      frame.dispatch_vr, /*vri=*/-1);
  LVRM_CLOG(kDispatch, kWarn)
      << "frame pool exhausted: in_flight=" << pool_->in_flight() << "/"
      << pool_->capacity() << " drops=" << pool_exhausted_drops_;
  if (telemetry_) {
    obs::AuditEvent e;
    e.time = now;
    e.until = now;
    e.kind = obs::AuditKind::kPoolExhausted;
    e.shard = static_cast<std::int16_t>(shard);
    // Cause: an explicitly configured (undersized) pool exhausts by
    // capacity; the auto-sized pool covers the full queue geometry, so its
    // exhaustion means offered load outran the gateway — overload.
    e.cause = static_cast<std::uint8_t>(
        config_.frame_pool_capacity > 0
            ? obs::PoolExhaustCause::kConfiguredCapacity
            : obs::PoolExhaustCause::kOverload);
    e.a = pool_->in_flight();
    e.b = pool_->capacity();
    e.c = pool_exhausted_drops_;
    telemetry_->audit().record(e);
  }
}

LvrmSystem::VrState& LvrmSystem::classify(net::FrameMeta& frame) {
  // "LVRM inspects the source IP address of the data frame, and determines
  // the VR that will process the data frame" (Sec 2.1). Unmatched frames
  // fall back to VR 0 so the single-VR experiments need no subnet setup.
  for (auto& vr : vrs_) {
    for (const auto& prefix : vr->cfg.subnets) {
      if (net::in_prefix(frame.src_ip, prefix.network, prefix.length)) {
        frame.dispatch_vr = static_cast<std::int16_t>(vr->id);
        return *vr;
      }
    }
  }
  frame.dispatch_vr = 0;
  return *vrs_.front();
}

Nanos LvrmSystem::rx_cost(net::FrameMeta& frame, DispatchShard& shard) {
  VrState& vr = classify(frame);
  const Nanos now = sim_.now();
  // §15: the RX-serve stamp completes the gw_in -> rx -> enq -> svc -> tx
  // hop timeline; one gated store per frame, never read by decision logic.
  if (tracer_) frame.obs_rx_at = now;
  if (vr.last_arrival >= 0) {
    const Nanos gap = now - vr.last_arrival;
    if (gap > 0) vr.arrival_gap.update(static_cast<double>(gap));
  }
  vr.last_arrival = now;
  ++vr.frames_in;

  Nanos cost = shard.adapter->recv_cost(frame) + costs::kClassifyCost +
               costs::kDispatchFixed;
  Nanos user_part = costs::kClassifyCost + costs::kDispatchFixed;

  // Fig 3.4 "estimate: called upon receipt of a packet": each VRI adapter
  // observes its current queue, then Fig 3.3's "get estimate" feeds JSQ.
  std::vector<VriView> views;
  views.reserve(vr.active_order.size());
  for (int idx : vr.active_order) {
    VriSlot& s = *vr.slots[static_cast<std::size_t>(idx)];
    s.estimator->on_packet_observed(s.data_in->size(), now);
    views.push_back(VriView{idx, s.estimator->load_at(now), s.suspect});
  }
  if (views.empty()) {
    frame.dispatch_vri = -1;
    return cost;
  }

  Dispatcher& disp = *vr.dispatchers[static_cast<std::size_t>(shard.id)];
  int chosen = disp.dispatch(frame, views, now);
  // §16: a detected elephant overrides its pin with a per-frame spray pick.
  if (replication_)
    chosen = maybe_spray(vr, shard, frame, views, chosen, now);
  frame.dispatch_vri = static_cast<std::int16_t>(chosen);
  const Nanos decision =
      disp.decision_cost(views.size(), disp.last_was_flow_hit());
  cost += decision + costs::kEnqueueCost;
  user_part += decision + costs::kEnqueueCost;

  const VriSlot& target = *vr.slots[static_cast<std::size_t>(chosen)];
  if (cross_socket(target.core_id, shard.core_id)) {
    cost += costs::kCrossSocketQueueOp;
    user_part += costs::kCrossSocketQueueOp;
  }
  if (now < target.cold_until) {
    cost += costs::kColdCacheSurcharge;
    user_part += costs::kColdCacheSurcharge;
  }

  // The whole task is charged to the adapter's recv category; move the
  // dispatch work to user time for the Fig 4.3 breakdown.
  if (shard.adapter->recv_category() != CostCategory::kUser)
    core(shard.core_id)
        .reclassify(shard.adapter->recv_category(), CostCategory::kUser,
                    user_part);
  return cost;
}

Nanos LvrmSystem::rx_cost_batch(std::span<net::FrameCell> cells,
                                DispatchShard& shard) {
  // Batched-hot-path equivalent of rx_cost over a whole drained burst
  // (DESIGN.md §9): classification and adapter receive stay per-frame, the
  // load-estimator observation and VriView construction happen once per VR
  // per burst (the burst is served at one instant), and the dispatch
  // decisions go through Dispatcher::dispatch_batch so same-flow frames
  // share one flow-table probe.
  const Nanos now = sim_.now();
  Nanos cost = 0;
  Nanos user_part = 0;

  if (rx_groups_.size() < vrs_.size()) rx_groups_.resize(vrs_.size());
  for (auto& g : rx_groups_) g.clear();

  // Descriptor mode: hint every referenced pool slot into cache before the
  // serve loop touches any meta (batch pop + prefetch; DESIGN.md §12).
  if (pool_)
    for (const net::FrameCell& c : cells)
      if (c.pooled()) pool_->prefetch(c.handle());

  for (net::FrameCell& c : cells) {
    net::FrameMeta& f = meta_of(c);
    if (tracer_) f.obs_rx_at = now;
    VrState& vr = classify(f);
    if (vr.last_arrival >= 0) {
      const Nanos gap = now - vr.last_arrival;
      if (gap > 0) vr.arrival_gap.update(static_cast<double>(gap));
    }
    vr.last_arrival = now;
    ++vr.frames_in;
    cost += shard.adapter->recv_cost(f) + costs::kClassifyCost +
            costs::kDispatchFixed;
    user_part += costs::kClassifyCost + costs::kDispatchFixed;
    rx_groups_[static_cast<std::size_t>(f.dispatch_vr)].push_back(&f);
  }

  for (std::size_t vid = 0; vid < vrs_.size(); ++vid) {
    auto& group = rx_groups_[vid];
    if (group.empty()) continue;
    VrState& vr = *vrs_[vid];

    views_scratch_.clear();
    for (int idx : vr.active_order) {
      VriSlot& s = *vr.slots[static_cast<std::size_t>(idx)];
      s.estimator->on_packet_observed(s.data_in->size(), now);
      views_scratch_.push_back(
          VriView{idx, s.estimator->load_at(now), s.suspect});
    }
    if (views_scratch_.empty()) {
      for (net::FrameMeta* f : group) f->dispatch_vri = -1;
      continue;
    }

    const Nanos decision =
        vr.dispatchers[static_cast<std::size_t>(shard.id)]->dispatch_batch(
            group, views_scratch_, now);
    cost += decision;
    user_part += decision;

    // §16: spray overrides run after the batch decision, before the
    // enqueue-cost pass reads each frame's final target.
    if (replication_) {
      for (net::FrameMeta* f : group)
        if (f->dispatch_vri >= 0)
          f->dispatch_vri = static_cast<std::int16_t>(
              maybe_spray(vr, shard, *f, views_scratch_, f->dispatch_vri, now));
    }

    for (const net::FrameMeta* f : group) {
      cost += costs::kEnqueueCost;
      user_part += costs::kEnqueueCost;
      const VriSlot& target =
          *vr.slots[static_cast<std::size_t>(f->dispatch_vri)];
      if (cross_socket(target.core_id, shard.core_id)) {
        cost += costs::kCrossSocketQueueOp;
        user_part += costs::kCrossSocketQueueOp;
      }
      if (now < target.cold_until) {
        cost += costs::kColdCacheSurcharge;
        user_part += costs::kColdCacheSurcharge;
      }
    }
  }

  if (shard.adapter->recv_category() != CostCategory::kUser)
    core(shard.core_id)
        .reclassify(shard.adapter->recv_category(), CostCategory::kUser,
                    user_part);
  return cost;
}

void LvrmSystem::rx_sink(net::FrameCell&& cell) {
  // Fig 3.2: the allocation pass runs "upon receipt of a packet after 1s or
  // more from the previous core allocation/deallocation process".
  maybe_allocate();
  // The heartbeat pass rides the same poll loop but on its own (much
  // shorter) period, so faults are noticed well inside the 1 s window.
  maybe_health_probe();
  net::FrameMeta& frame = meta_of(cell);
  // The snapshot tick piggybacks on the same loop: telemetry aggregation
  // never needs its own timer or thread.
  if (obs_) {
    obs_->rx_frames.inc();
    if (!obs_->shard_rx.empty() && frame.dispatch_shard >= 0)
      obs_->shard_rx[static_cast<std::size_t>(frame.dispatch_shard)].inc();
    maybe_snapshot();
  }

  if (frame.dispatch_vr < 0 || frame.dispatch_vri < 0) {
    ++unclassified_drops_;
    note_drop(frame, DropCause::kUnclassified);
    drop_cell(std::move(cell));
    return;
  }
  VrState& vr = *vrs_[static_cast<std::size_t>(frame.dispatch_vr)];
  VriSlot& slot = *vr.slots[static_cast<std::size_t>(frame.dispatch_vri)];
  if (!slot.active) {
    ++vr.data_drops;
    note_drop(frame, DropCause::kVriInactive);
    drop_cell(std::move(cell));
    return;
  }
  if (config_.overload_control.enabled) {
    // Degradation ladder (DESIGN.md §13): adapt the VR's sampling rate on
    // window boundaries, then apply the level-1 per-flow sampling shed.
    overload_tick(vr, sim_.now());
    if (maybe_sample_shed(vr, slot, cell)) return;
  }
  if (maybe_shed(vr, slot, cell)) return;
  if (tracer_) {
    // §15 load-adaptive sampling replaces the fixed §10 countdown. The
    // pressure signal is the same one the §13 ladder watches — the chosen
    // data queue at/above the sample watermark — so span resolution rises
    // when the pipeline is idle and backs off under overload.
    const auto watermark = static_cast<std::size_t>(
        config_.overload_control.sample_watermark *
        static_cast<double>(slot.data_in->capacity()));
    tracer_->observe_pressure(slot.data_in->size() >= watermark, sim_.now());
    if (tracer_->should_sample()) {
      frame.obs_sampled = 1;
      frame.obs_enq_at = sim_.now();
    }
    tracer_->record(frame.dispatch_shard, obs::TraceHop::kDispatch, frame.id,
                    frame.dispatch_vr, frame.dispatch_vri, sim_.now(), 0,
                    frame.obs_sampled != 0);
  } else if (obs_ && telemetry_->should_sample()) {
    frame.obs_sampled = 1;
    frame.obs_enq_at = sim_.now();
  }
  if (!push_cell_or_note(*slot.data_in, std::move(cell),
                         DropCause::kQueueFull)) {
    ++vr.data_drops;
    return;
  }
  // Fig 3.4 "estimate": one sample per dispatched frame.
  slot.estimator->on_dispatch(slot.data_in->size(), sim_.now());
}

bool LvrmSystem::maybe_shed(VrState& vr, VriSlot& slot,
                            net::FrameCell& cell) {
  if (config_.shed_policy == ShedPolicy::kNone) return false;
  // Shed only when the VR cannot grow out of the overload — it is at its
  // VRI cap or no cores remain — and even its *chosen* (shortest for JSQ)
  // queue is past the watermark, i.e. arrival has exceeded the allocated
  // capacity for long enough to back every queue up.
  if (static_cast<int>(vr.active_order.size()) < config_.max_vris_per_vr &&
      any_free_core())
    return false;
  const auto watermark = static_cast<std::size_t>(
      config_.shed_watermark * static_cast<double>(slot.data_in->capacity()));
  if (slot.data_in->size() < watermark) return false;

  ++vr.shed_drops;
  if (telemetry_ && !vr.shed_open) {
    // Open a shedding episode: remember the load picture that caused it.
    vr.shed_open = true;
    vr.shed_start = sim_.now();
    vr.shed_at_open = vr.shed_drops - 1;
    vr.shed_rate = arrival_rate_estimate(vr.id);
    vr.shed_service = measured_service_rate(vr);
    LVRM_CLOG(kShed, kInfo)
        << "vr=" << vr.id << " shedding opened: arrival="
        << vr.shed_rate << " fps, service=" << vr.shed_service
        << " fps/vri, watermark=" << config_.shed_watermark;
  }
  LVRM_CLOG(kShed, kTrace) << "vr=" << vr.id << " shed frame at vri="
                           << slot.index;
  if (config_.shed_policy == ShedPolicy::kDropOldest &&
      !slot.data_in->empty()) {
    // Evict the stalest queued frame to admit the fresh one (its pool slot,
    // if any, is recycled — "free once at drop").
    net::FrameCell evicted = slot.data_in->pop();
    note_drop(meta_of(evicted), DropCause::kShedDropOldest);
    drop_cell(std::move(evicted));
    if (push_cell_or_note(*slot.data_in, std::move(cell),
                          DropCause::kQueueFull))
      slot.estimator->on_dispatch(slot.data_in->size(), sim_.now());
    return true;
  }
  // kDropNewest: the arriving frame is shed before the enqueue.
  note_drop(meta_of(cell), DropCause::kShedDropNewest);
  drop_cell(std::move(cell));
  return true;
}

// --- degradation ladder (DESIGN.md §13) ---------------------------------------------

bool LvrmSystem::in_subset(const net::FrameMeta& f, double rate) const {
  if (rate >= 1.0) return true;
  // Deterministic per-flow subsetting: the same 5-tuple hash the flow table
  // and RSS steering key on, salted so the subset is independent of both.
  // Halving the rate always keeps a subset of the previous survivors, so
  // escalation never re-admits a flow it already shed.
  const std::uint64_t h = net::hash_tuple(net::FiveTuple::from_frame(f)) ^
                          config_.overload_control.subset_salt;
  return static_cast<double>(h >> 32) < rate * 4294967296.0;
}

bool LvrmSystem::admission_reject(net::FrameMeta& frame) {
  // classify() is idempotent (rx_cost re-runs it on the admitted frames).
  VrState& vr = classify(frame);
  if (vr.level != OverloadLevel::kAdmission) return false;
  // The gate can be the only code still seeing this VR's frames (everything
  // outside the subset dies right here), so it must drive the adaptation
  // clock too — otherwise a fully-gated VR would never relax.
  overload_tick(vr, sim_.now());
  if (vr.level != OverloadLevel::kAdmission) return false;
  if (in_subset(frame, vr.sample_rate)) {
    // Record the gate's sampling rate in the frame: egress consumers divide
    // delivered counts by the recorded rate to bias-correct them back to
    // offered counts (DESIGN.md §13).
    frame.admit_rate = vr.sample_rate;
    return false;
  }
  ++vr.admission_rejected;
  // The reject runs *after* the cheap source-prefix classification, so the
  // offered tally stays exact even while the gate drops at ingress — unlike
  // a NIC-ring overflow, which loses frames before anything knows which VR
  // they belonged to.
  vr.offered_estimate += 1.0;
  if (obs_) obs_->admission_rejected.inc();
  note_drop(frame, DropCause::kAdmissionReject);
  return true;
}

bool LvrmSystem::maybe_sample_shed(VrState& vr, VriSlot& slot,
                                   net::FrameCell& cell) {
  const OverloadConfig& oc = config_.overload_control;
  ++vr.win_frames;
  const auto watermark = static_cast<std::size_t>(
      oc.sample_watermark * static_cast<double>(slot.data_in->capacity()));
  if (slot.data_in->size() >= watermark) ++vr.win_pressured;
  // Every frame the sampler inspects is tallied before the shed decision:
  // level-1 drops happen with the frame in hand, so — together with the
  // admission gate's exact reject tally — the per-VR offered count stays
  // reconstructible to well under the Exp 6 five-percent bar no matter how
  // hard the ladder sheds.
  vr.offered_estimate += 1.0;
  if (vr.level == OverloadLevel::kNormal) return false;
  net::FrameMeta& f = meta_of(cell);
  if (in_subset(f, vr.sample_rate)) {
    // Survivors record their end-to-end sampling rate: the hash subsets
    // nest (subset(r1) ∩ subset(r2) == subset(min(r1, r2))), so the min of
    // the admission-gate rate stamped at ingress and the current rate is
    // this frame's exact survival probability. Dividing per-flow delivered
    // counts by the recorded rate bias-corrects them back to offered
    // counts, however the ladder moved while the frame sat in a ring.
    f.admit_rate = std::min(f.admit_rate, vr.sample_rate);
    return false;
  }
  ++vr.sampled_shed;
  if (obs_) obs_->sampled_shed.inc();
  note_drop(f, DropCause::kSampledShed);
  drop_cell(std::move(cell));
  return true;
}

void LvrmSystem::overload_tick(VrState& vr, Nanos now) {
  const OverloadConfig& oc = config_.overload_control;
  if (vr.win_start < 0) {
    vr.win_start = now;
    return;
  }
  if (now - vr.win_start < oc.adapt_period) return;
  // An empty window is calm, not unknown: at a deep admission rung every
  // active flow can fall outside the subset, so no frame ever reaches the
  // sampler again — holding the rung on silence would deadlock the ladder.
  const double pressure = vr.win_frames == 0
                              ? 0.0
                              : static_cast<double>(vr.win_pressured) /
                                    static_cast<double>(vr.win_frames);
  if (pressure >= oc.escalate_pressure) {
    ++vr.escalations;
    const double next = std::max(oc.min_sample_rate, vr.sample_rate * 0.5);
    const OverloadLevel level = vr.escalations >= oc.admission_after
                                    ? OverloadLevel::kAdmission
                                    : OverloadLevel::kSampling;
    if (level != vr.level || next != vr.sample_rate)
      set_overload_state(vr, level, next, pressure);
  } else if (pressure <= oc.relax_pressure) {
    vr.escalations = 0;
    if (vr.level == OverloadLevel::kAdmission) {
      // Step down one rung at a time: admission releases first, the
      // sampling rate recovers on the following calm windows.
      set_overload_state(vr, OverloadLevel::kSampling, vr.sample_rate,
                         pressure);
    } else if (vr.level == OverloadLevel::kSampling) {
      const double next = std::min(1.0, vr.sample_rate * 2.0);
      set_overload_state(vr,
                         next >= 1.0 ? OverloadLevel::kNormal
                                     : OverloadLevel::kSampling,
                         next, pressure);
    }
  } else {
    // Plateau: hold the rung; consecutive-escalation streak is broken.
    vr.escalations = 0;
  }
  vr.win_start = now;
  vr.win_frames = 0;
  vr.win_pressured = 0;
}

void LvrmSystem::set_overload_state(VrState& vr, OverloadLevel level,
                                    double rate, double pressure) {
  const OverloadLevel before = vr.level;
  if (level == OverloadLevel::kNormal) rate = 1.0;
  // The ingress admission gate stays zero-cost while no VR is at kAdmission.
  if (before != OverloadLevel::kAdmission &&
      level == OverloadLevel::kAdmission) {
    ++admission_active_;
    // §15 black box: the ladder reaching admission is an incident — dump
    // the flight recorders before the gate starts erasing the evidence.
    if (tracer_)
      trace_flight_dump(obs::FlightDumpCause::kAdmission, /*shard=*/-1,
                        vr.id, /*vri=*/-1);
  }
  if (before == OverloadLevel::kAdmission &&
      level != OverloadLevel::kAdmission)
    --admission_active_;
  vr.level = level;
  vr.sample_rate = rate;
  LVRM_CLOG(kShed, kInfo) << "vr=" << vr.id << " overload "
                          << to_string(before) << " -> " << to_string(level)
                          << " rate=" << rate << " pressure=" << pressure;
  if (telemetry_) {
    obs::AuditEvent e;
    e.time = sim_.now();
    e.until = e.time;
    e.kind = obs::AuditKind::kOverloadLevel;
    e.vr = static_cast<std::int16_t>(vr.id);
    e.rate = rate;
    e.threshold = pressure;
    e.a = static_cast<std::uint64_t>(level);
    e.b = static_cast<std::uint64_t>(before);
    e.c = vr.sampled_shed + vr.admission_rejected;
    telemetry_->audit().record(e);
  }
}

// --- control events -------------------------------------------------------------------

void LvrmSystem::send_control(int vr_id, int src_vri, int dst_vri,
                              std::size_t bytes,
                              std::function<void(Nanos)> on_delivered,
                              net::FrameKind kind) {
  VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));
  VriSlot& src = *vr.slots.at(static_cast<std::size_t>(src_vri));
  net::FrameMeta f;
  f.kind = kind;
  f.id = next_control_id_++;
  f.wire_bytes = static_cast<int>(bytes);
  f.created_at = sim_.now();
  f.dispatch_vr = static_cast<std::int16_t>(vr_id);
  f.dispatch_vri = static_cast<std::int16_t>(dst_vri);
  control_cbs_.emplace(f.id, std::move(on_delivered));
  // Control frames always travel inline: they are rare, latency-sensitive
  // and never part of the pooled data path (DESIGN.md §12).
  if (!src.ctrl_out->push(net::FrameCell(std::move(f)))) {
    ++control_drops_;
    control_cbs_.erase(next_control_id_ - 1);
  }
}

void LvrmSystem::broadcast_route_update(int vr_id, int src_vri,
                                        const route::RouteUpdate& update,
                                        std::function<void(Nanos)> on_synced) {
  VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));

  // The originator applies immediately; inactive siblings are updated in
  // place so a later activation starts from consistent state.
  for (auto& slot : vr.slots) {
    if (slot->index == src_vri || !slot->active)
      slot->router->apply_route_update(update);
  }

  // Logged so a respawned (fresh-process) VRI can replay every update it
  // would otherwise have missed — part of the Sec 2.1 routing-state sync.
  vr.route_log.push_back(update);

  struct SyncState {
    int pending = 0;
    Nanos worst = 0;
    std::function<void(Nanos)> done;
  };
  auto sync = std::make_shared<SyncState>();
  sync->done = std::move(on_synced);
  for (const int idx : vr.active_order)
    if (idx != src_vri) ++sync->pending;
  if (sync->pending == 0) {
    if (sync->done) sync->done(0);
    return;
  }

  const std::size_t bytes = route::kRouteUpdateWireSize + 16;  // + header
  for (const int idx : vr.active_order) {
    if (idx == src_vri) continue;
    VriSlot* slot = vr.slots[static_cast<std::size_t>(idx)].get();
    send_control(vr_id, src_vri, idx, bytes,
                 [slot, update, sync](Nanos latency) {
                   slot->router->apply_route_update(update);
                   sync->worst = std::max(sync->worst, latency);
                   if (--sync->pending == 0 && sync->done)
                     sync->done(sync->worst);
                 });
  }
}

// --- state replication (DESIGN.md §16) ----------------------------------------------

int LvrmSystem::maybe_spray(VrState& vr, DispatchShard& shard,
                            net::FrameMeta& f, std::span<const VriView> views,
                            int chosen, Nanos now) {
  // Spraying needs a flow pin to relax and a sibling to spray to.
  if (config_.granularity != BalancerGranularity::kFlow || chosen < 0)
    return chosen;
  const StateReplicationConfig& rc = config_.state_replication;
  const auto tuple = net::FiveTuple::from_frame(f);

  const auto it = vr.sprays.find(tuple);
  if (it != vr.sprays.end()) {
    VrState::SprayState& sp = it->second;
    // Stamp every frame from the promotion decision onward — including the
    // Pending phase, where the flow is still pinned to its owner. Every
    // unstamped frame of the flow is FIFO-ahead of the first stamped one in
    // the owner's queue, so the pin-to-spray transition cannot reorder.
    f.sprayed = 1;
    f.spray_flow = sp.id;
    f.spray_seq = sp.next_seq++;
    ++sp.frames;
    sp.last_frame = now;
    ++sprayed_frames_;
    if (obs_) obs_->sprayed_frames.inc();
    if (sp.phase != VrState::SprayState::Phase::kActive) return chosen;
    // Active: per-frame min-load pick over the non-suspect candidates (the
    // replicated state makes every sibling a valid target).
    int best = chosen;
    double best_load = std::numeric_limits<double>::infinity();
    for (const VriView& v : views) {
      if (v.suspect) continue;
      if (v.load < best_load) {
        best_load = v.load;
        best = v.index;
      }
    }
    return best;
  }

  // Heavy-hitter detection: count the flow in its current window slot. A
  // hash collision can only over-count (promote a mouse early — harmless,
  // it just gets replicated too), never miss a true elephant.
  if (views.size() < 2) return chosen;
  const std::size_t slot = static_cast<std::size_t>(
      net::hash_tuple(tuple) & (VrState::kHhSlots - 1));
  const Nanos window = std::max<Nanos>(1, rc.detect_window);
  const auto win = static_cast<std::uint64_t>(now / window);
  if (vr.hh_window[slot] != win) {
    vr.hh_window[slot] = win;
    vr.hh_counts[slot] = 0;
  }
  const std::uint64_t count = ++vr.hh_counts[slot];
  const double window_sec = static_cast<double>(window) / 1e9;
  const double threshold_frames =
      std::max(static_cast<double>(rc.min_frames),
               rc.elephant_fraction * config_.per_vri_capacity_fps *
                   window_sec);
  if (static_cast<double>(count) < threshold_frames) return chosen;

  // Promotion: enter Pending (still pinned), start the snapshot handshake,
  // and stamp this frame as the flow's first sprayed frame.
  VrState::SprayState sp;
  sp.id = next_spray_flow_++;
  sp.owner = chosen;
  sp.shard = shard.id;
  sp.rate_fps = static_cast<double>(count) / window_sec;
  sp.last_frame = now;
  f.sprayed = 1;
  f.spray_flow = sp.id;
  f.spray_seq = sp.next_seq++;
  sp.frames = 1;
  ++sprayed_frames_;
  if (obs_) obs_->sprayed_frames.inc();
  const double threshold_fps = threshold_frames / window_sec;
  vr.sprays.emplace(tuple, sp);
  start_spray_handshake(vr, shard.id, chosen, tuple, sp.rate_fps,
                        threshold_fps);
  return chosen;
}

void LvrmSystem::start_spray_handshake(VrState& vr, int shard, int owner,
                                       const net::FiveTuple& tuple,
                                       double rate_fps, double threshold_fps) {
  // Snapshot the owner's state for this flow and copy it to every active
  // sibling over the control rings (the broadcast_route_update pattern).
  // The spray goes Active only when the slowest sibling has acked — until
  // then frames stay pinned, so a sibling never sees a mid-flow frame
  // before the snapshot that explains it.
  VriSlot& own = *vr.slots.at(static_cast<std::size_t>(owner));
  net::StateDelta snap;
  const bool have_state =
      own.router->stateful() && own.router->export_flow_state(tuple, snap);

  struct Sync {
    int pending = 0;
    Nanos worst = 0;
  };
  auto sync = std::make_shared<Sync>();
  for (const int idx : vr.active_order)
    if (idx != owner) ++sync->pending;

  const Nanos started = sim_.now();
  VrState* vrp = &vr;
  auto activate = [this, vrp, tuple, shard, owner, rate_fps, threshold_fps,
                   started](Nanos worst) {
    const auto it = vrp->sprays.find(tuple);
    if (it == vrp->sprays.end()) return;  // idle-expired mid-handshake
    it->second.phase = VrState::SprayState::Phase::kActive;
    ++spray_activations_;
    if (obs_) obs_->spray_activations.inc();
    LVRM_CLOG(kDispatch, kInfo)
        << "vr=" << vrp->id << " flow sprayed: rate=" << rate_fps
        << " fps >= threshold=" << threshold_fps << " fps, fanout="
        << vrp->active_order.size() << ", handshake=" << worst << " ns";
    if (telemetry_) {
      obs::AuditEvent e;
      e.time = started;
      e.until = sim_.now();
      e.kind = obs::AuditKind::kFlowSpray;
      e.vr = static_cast<std::int16_t>(vrp->id);
      e.vri = static_cast<std::int16_t>(owner);
      e.shard = static_cast<std::int16_t>(shard);
      e.rate = rate_fps;
      e.threshold = threshold_fps;
      e.a = vrp->active_order.size();
      e.b = it->second.id;
      e.c = static_cast<std::uint64_t>(worst);
      telemetry_->audit().record(e);
    }
  };
  if (sync->pending == 0) {  // unreachable behind the >= 2 VRI gate
    activate(0);
    return;
  }
  for (const int idx : vr.active_order) {
    if (idx == owner) continue;
    VriSlot* sib = vr.slots[static_cast<std::size_t>(idx)].get();
    // A lost handshake leg (injected control loss) erases the callback:
    // the spray then stays Pending — i.e. pinned — forever. Safe by
    // construction; never wrong, only not faster.
    send_control(vr.id, owner, idx, net::StateDelta::kWireBytes + 16,
                 [sib, snap, have_state, sync, activate](Nanos latency) {
                   if (have_state && sib->active && !sib->crashed)
                     sib->router->apply_delta(snap);
                   sync->worst = std::max(sync->worst, latency);
                   if (--sync->pending == 0) activate(sync->worst);
                 });
  }
}

std::size_t LvrmSystem::relay_deltas(VrState& vr, VriSlot& slot) {
  const StateReplicationConfig& rc = config_.state_replication;
  net::StateDelta d;
  std::size_t drained = 0;
  while (slot.router->take_delta(d)) {
    ++drained;
    if (rc.delta_period > 1) {
      // Relay every Nth delta of the flow; the ones in between are absorbed
      // by the next relayed record (deltas carry absolute state, so a
      // skipped one costs freshness, not correctness).
      const auto it = vr.sprays.find(d.flow);
      if (it != vr.sprays.end() &&
          (it->second.delta_seq++ % rc.delta_period) != 0)
        continue;
    }
    for (const int idx : vr.active_order) {
      if (idx == slot.index) continue;
      VriSlot* sib = vr.slots[static_cast<std::size_t>(idx)].get();
      ++deltas_sent_;
      if (obs_) obs_->deltas_sent.inc();
      // The callback runs when the sibling consumes the delta from its
      // ctrl_in (charged at the §16 delta-apply cost, not the full control
      // cost). Re-read the slot's router at delivery — a respawn may have
      // replaced it. A lost delta (ctrl loss) erases the callback: safe
      // loss, the next relayed delta for the flow carries absolute state.
      send_control(
          vr.id, slot.index, idx, net::StateDelta::kWireBytes,
          [this, sib, d](Nanos) {
            if (!sib->active || sib->crashed) return;
            if (sib->router->apply_delta(d)) {
              ++deltas_applied_;
              if (obs_ && replication_) obs_->deltas_applied.inc();
            }
          },
          net::FrameKind::kStateDelta);
    }
  }
  return drained;
}

void LvrmSystem::finish_tx(VrState& vr, net::FrameMeta&& f) {
  ++forwarded_;
  ++vr.forwarded;
  if (f.dispatch_vri >= 0 &&
      f.dispatch_vri < static_cast<std::int16_t>(vr.slots.size()))
    ++vr.slots[static_cast<std::size_t>(f.dispatch_vri)]->forwarded;
  if (tracer_) {
    tracer_->record(f.dispatch_shard, obs::TraceHop::kTxDrain, f.id,
                    f.dispatch_vr, f.dispatch_vri, f.gw_out_at, 0,
                    f.obs_sampled != 0);
    // A delivered sample's hop timeline is complete here: collect the span
    // (terminal 0 = egressed).
    if (f.obs_sampled) tracer_->add_span(span_of(f, 0));
  }
  if (obs_) {
    obs_->tx_frames.inc();
    if (!obs_->shard_tx.empty() && f.dispatch_shard >= 0)
      obs_->shard_tx[static_cast<std::size_t>(f.dispatch_shard)].inc();
    if (f.obs_sampled) {
      // The three stages of the latency pipeline, recorded for the sampled
      // subset only (identical in classic and batched mode).
      obs_->queue_wait_ns.record(static_cast<std::uint64_t>(
          std::max<Nanos>(0, f.obs_svc_at - f.obs_enq_at)));
      obs_->vri_service_ns.record(static_cast<std::uint64_t>(
          std::max<Nanos>(0, f.obs_done_at - f.obs_svc_at)));
      obs_->e2e_ns.record(static_cast<std::uint64_t>(
          std::max<Nanos>(0, f.gw_out_at - f.gw_in_at)));
    }
  }
  if (egress_) egress_(std::move(f));
}

void LvrmSystem::seq_release_run(VrState& vr, SeqOut& so) {
  auto it = so.held.find(so.next);
  while (it != so.held.end()) {
    if (it->second) {
      --so.live;
      finish_tx(vr, std::move(*it->second));
    }
    so.held.erase(it);
    ++so.next;
    it = so.held.find(so.next);
  }
}

void LvrmSystem::sequence_tx(VrState& vr, net::FrameMeta&& f) {
  SeqOut& so = vr.seq_out[f.spray_flow];
  so.last_activity = sim_.now();
  if (f.spray_seq < so.next) {
    // Behind the release cursor: its position was force-released by a
    // window overflow (or tombstoned then superseded). Let it through late
    // rather than hold it forever.
    finish_tx(vr, std::move(f));
    return;
  }
  if (f.spray_seq == so.next) {
    ++so.next;
    finish_tx(vr, std::move(f));
    seq_release_run(vr, so);
    return;
  }
  // Ahead of the cursor: park until the gap fills (or tombstones).
  ++seq_holds_;
  if (obs_ && replication_) obs_->seq_holds.inc();
  const std::uint32_t seq = f.spray_seq;
  const auto [it, inserted] =
      so.held.emplace(seq, std::optional<net::FrameMeta>());
  if (!inserted) {  // duplicate position (cannot happen by construction)
    finish_tx(vr, std::move(f));
    return;
  }
  it->second = std::move(f);
  ++so.live;
  while (so.live > config_.state_replication.reorder_window) {
    // Overflow: more FRAMES held than the window allows — force-release
    // from the oldest held position. This is the one case external order
    // can be violated, and it is counted.
    ++seq_window_overflows_;
    if (obs_ && replication_) obs_->seq_window_overflow.inc();
    auto first = so.held.begin();
    so.next = first->first + 1;
    if (first->second) {
      --so.live;
      finish_tx(vr, std::move(*first->second));
    }
    so.held.erase(first);
    seq_release_run(vr, so);
  }
}

void LvrmSystem::seq_skip(const net::FrameMeta& f) {
  if (f.dispatch_vr < 0 ||
      f.dispatch_vr >= static_cast<std::int16_t>(vrs_.size()))
    return;
  VrState& vr = *vrs_[static_cast<std::size_t>(f.dispatch_vr)];
  SeqOut& so = vr.seq_out[f.spray_flow];
  so.last_activity = sim_.now();
  if (f.spray_seq < so.next) return;  // cursor already passed this position
  ++seq_gap_skips_;
  if (obs_ && replication_) obs_->seq_gap_skips.inc();
  if (f.spray_seq == so.next) {
    ++so.next;
    seq_release_run(vr, so);
    return;
  }
  so.held.emplace(f.spray_seq, std::nullopt);  // tombstone the hole
}

void LvrmSystem::spray_gc(Nanos now) {
  if (now - last_spray_gc_ < sec(1)) return;
  last_spray_gc_ = now;
  const Nanos idle =
      std::max<Nanos>(sec(1), 2 * config_.state_replication.detect_window);
  for (auto& vrp : vrs_) {
    VrState& vr = *vrp;
    for (auto it = vr.sprays.begin(); it != vr.sprays.end();) {
      const VrState::SprayState& sp = it->second;
      if (now - sp.last_frame < idle) {
        ++it;
        continue;
      }
      if (telemetry_) {
        obs::AuditEvent e;
        e.time = now;
        e.until = now;
        e.kind = obs::AuditKind::kFlowSprayEnd;
        e.vr = static_cast<std::int16_t>(vr.id);
        e.shard = static_cast<std::int16_t>(sp.shard);
        e.a = sp.frames;
        e.b = sp.id;
        telemetry_->audit().record(e);
      }
      it = vr.sprays.erase(it);
    }
    // Idle sequencers retire too. One still holding frames had a gap that
    // will never fill (its frame is gone for good) — flush the stragglers
    // in positional order rather than leak them (and their pool slots).
    for (auto it = vr.seq_out.begin(); it != vr.seq_out.end();) {
      SeqOut& so = it->second;
      if (now - so.last_activity < idle) {
        ++it;
        continue;
      }
      for (auto& [seq, frame] : so.held)
        if (frame) finish_tx(vr, std::move(*frame));
      it = vr.seq_out.erase(it);
    }
  }
}

void LvrmSystem::bump_pool_generation(VrState& vr) {
  ++vr.pool_generation;
  for (auto& d : vr.dispatchers) d->set_pool_generation(vr.pool_generation);
}

// ---------------------------------------------------------------------------
// §17 MPMC fabric + work stealing
// ---------------------------------------------------------------------------

LvrmSystem::VriSlot* LvrmSystem::steal_victim_slot(const net::FrameMeta& f) {
  if (f.dispatch_vr < 0 || f.dispatch_vr >= static_cast<int>(vrs_.size()))
    return nullptr;
  VrState& vr = *vrs_[static_cast<std::size_t>(f.dispatch_vr)];
  if (f.dispatch_vri < 0 ||
      f.dispatch_vri >= static_cast<int>(vr.slots.size()))
    return nullptr;
  return vr.slots[static_cast<std::size_t>(f.dispatch_vri)].get();
}

bool LvrmSystem::spray_is_active(const VrState& vr,
                                 const net::FrameMeta& f) const {
  // Ingress frames have not run the stateful step yet, so the 5-tuple is
  // still the dispatch-side one the spray map is keyed by.
  const auto it = vr.sprays.find(net::FiveTuple::from_frame(f));
  return it != vr.sprays.end() &&
         it->second.phase == VrState::SprayState::Phase::kActive;
}

bool LvrmSystem::try_tx_steal(DispatchShard& thief) {
  if (!stealing_ || !thief.tx_steal_q) return false;
  // One victim burst at a time: the staging queue must fully egress (and
  // reopen the victim's gate) before the next steal, or bursts from two
  // victims would interleave in one FIFO.
  if (!thief.tx_steal_q->empty() ||
      thief.server->serving_input(thief.tx_steal_input))
    return false;
  for (auto& vrp : vrs_) {
    for (auto& sp : vrp->slots) {
      VriSlot& s = *sp;
      if (s.home_shard == thief.id) continue;  // only foreign drains
      if (s.steal_inflight > 0) continue;      // already being stolen from
      if (s.data_out->size() < config_.steal_min_backlog) continue;
      DispatchShard& home = shards_[static_cast<std::size_t>(s.home_shard)];
      // Never steal under the home server's feet: mid-burst frames must
      // egress before anything younger, and the stolen burst would race.
      if (home.server->serving_input(s.data_out_input)) continue;
      std::size_t moved = 0;
      const std::size_t want =
          std::min<std::size_t>(config_.poll_batch, s.data_out->size());
      while (moved < want && !s.data_out->empty()) {
        if (!thief.tx_steal_q->push(s.data_out->pop())) break;  // staging full
        ++moved;
      }
      if (moved == 0) continue;
      // Close the victim's own drain until the stolen (older) burst has
      // egressed — newer same-slot frames cannot overtake it.
      s.steal_inflight = moved;
      home.server->repair_hint(s.data_out_input);
      ++tx_steals_;
      tx_steal_frames_ += moved;
      if (obs_) {
        obs_->tx_steals.inc();
        obs_->tx_steal_frames.add(moved);
      }
      audit_steal(obs::AuditKind::kTxSteal, thief.id, s, moved);
      return true;
    }
  }
  // Nothing stealable right now. A foreign drain with backlog may become
  // stealable once its home server moves off it — re-poll; with no backlog
  // anywhere let the timer die so an idle sim can drain.
  arm_tx_steal_timer(thief);
  return false;
}

void LvrmSystem::maybe_poke_tx_thieves(VriSlot& s) {
  if (!stealing_) return;
  // Exactly at the threshold crossing: one poke per backlog build-up, not
  // one per egress frame. Busy thieves find steals through their own idle
  // transitions; this only wakes shards with nothing else to run.
  if (s.data_out->size() != config_.steal_min_backlog) return;
  for (auto& shard : shards_) {
    if (shard.id == s.home_shard) continue;
    if (!shard.server->busy()) shard.server->maybe_serve();
  }
}

void LvrmSystem::arm_tx_steal_timer(DispatchShard& thief) {
  if (thief.tx_steal_timer_armed) return;
  bool backlog = false;
  for (const auto& vrp : vrs_) {
    for (const auto& sp : vrp->slots) {
      if (sp->home_shard != thief.id &&
          sp->data_out->size() >= config_.steal_min_backlog) {
        backlog = true;
        break;
      }
    }
    if (backlog) break;
  }
  if (!backlog) return;
  thief.tx_steal_timer_armed = true;
  DispatchShard* t = &thief;
  sim_.after(config_.steal_poll_period, [this, t] {
    t->tx_steal_timer_armed = false;
    if (!stealing_ || t->server->busy()) return;
    // Re-run the idle scan (which re-arms this timer while backlog holds).
    t->server->maybe_serve();
  });
}

bool LvrmSystem::try_vri_steal(VrState& vr, VriSlot& thief) {
  if (!stealing_) return false;
  if (!thief.active || thief.crashed || thief.draining || thief.hung)
    return false;
  for (const int idx : vr.active_order) {
    VriSlot& victim = *vr.slots[static_cast<std::size_t>(idx)];
    if (&victim == &thief) continue;
    if (victim.crashed || victim.hung || victim.draining) continue;
    if (victim.data_in->size() < config_.steal_min_backlog) continue;
    std::size_t moved = 0;
    const std::size_t want =
        std::min<std::size_t>(config_.poll_batch, victim.data_in->size());
    while (moved < want && !victim.data_in->empty()) {
      // Steal-only-unpinned: frame-granularity frames carry no per-flow
      // FIFO promise, and Active-sprayed frames are re-sequenced at TX
      // (§16). Anything else is pinned — stop at the first pinned head so
      // a pinned flow's in-queue order is never split across VRIs.
      const net::FrameMeta& head = victim.data_in->front().meta(pool_.get());
      const bool unpinned =
          config_.granularity == BalancerGranularity::kFrame ||
          (head.sprayed != 0 && spray_is_active(vr, head));
      if (!unpinned) break;
      if (thief.data_in->size() >= thief.data_in->capacity()) break;
      net::FrameCell c = victim.data_in->pop();
      // Re-stamp the dispatch decision: service accounting, NUMA costing
      // and TX-steal victim lookup all key off the executing VRI.
      meta_of(c).dispatch_vri = static_cast<std::int16_t>(thief.index);
      push_cell(*thief.data_in, std::move(c));
      ++moved;
    }
    if (moved == 0) continue;
    victim.server->repair_hint(victim.data_in_input);
    ++vri_steals_;
    vri_steal_frames_ += moved;
    if (obs_) {
      obs_->vri_steals.inc();
      obs_->vri_steal_frames.add(moved);
    }
    audit_steal(obs::AuditKind::kVriSteal, thief.index, victim, moved);
    return true;
  }
  // Nothing stealable right now. If a live sibling still holds backlog the
  // heads may unpin later (a spray going Active, pinned frames draining) —
  // re-poll; otherwise let the timer die so an idle sim can drain.
  arm_steal_timer(vr, thief);
  return false;
}

void LvrmSystem::arm_steal_timer(VrState& vr, VriSlot& thief) {
  if (thief.steal_timer_armed) return;
  bool backlog = false;
  for (const int idx : vr.active_order) {
    const VriSlot& s = *vr.slots[static_cast<std::size_t>(idx)];
    if (&s == &thief || s.crashed || s.hung) continue;
    if (s.data_in->size() >= config_.steal_min_backlog) {
      backlog = true;
      break;
    }
  }
  if (!backlog) return;
  thief.steal_timer_armed = true;
  VrState* v = &vr;
  VriSlot* t = &thief;
  sim_.after(config_.steal_poll_period, [this, v, t] {
    t->steal_timer_armed = false;
    if (!stealing_ || !t->active || t->crashed || t->server->busy()) return;
    // Re-run the idle scan (which re-arms this timer while backlog holds).
    t->server->maybe_serve();
  });
}

void LvrmSystem::audit_steal(obs::AuditKind kind, int thief,
                             const VriSlot& victim, std::size_t burst) {
  if (!telemetry_) return;
  const Nanos now = sim_.now();
  // Rate-limited like kPoolExhausted: at most one event per sim second per
  // kind — the counters stay exact, the bounded trail stays unflooded.
  Nanos& last = kind == obs::AuditKind::kTxSteal ? last_tx_steal_audit_
                                                 : last_vri_steal_audit_;
  if (last >= 0 && now - last < sec(1)) return;
  last = now;
  obs::AuditEvent e;
  e.time = e.until = now;
  e.kind = kind;
  e.vr = static_cast<std::int16_t>(victim.vr_id);
  e.a = burst;
  if (kind == obs::AuditKind::kTxSteal) {
    e.shard = static_cast<std::int16_t>(thief);
    e.vri = static_cast<std::int16_t>(victim.index);
    e.b = tx_steals_;
    e.c = tx_steal_frames_;
  } else {
    e.vri = static_cast<std::int16_t>(thief);
    e.service = static_cast<double>(victim.index);
    e.b = vri_steals_;
    e.c = vri_steal_frames_;
  }
  telemetry_->audit().record(e);
}

std::size_t LvrmSystem::mesh_ring_count() const {
  // The SPSC mesh this fabric replaces: with S dispatch shards every slot
  // needs a per-(shard, slot) ring in EACH direction (any shard may dispatch
  // to any slot; any slot's egress is drained by its producer shard — §11's
  // per-shard TX drains) plus its two control rings, and each shard has its
  // RX ring. rings = Σ_slots (2S + 2) + S.
  const std::size_t S = shards_.size();
  std::size_t slots = 0;
  for (const auto& vr : vrs_) slots += vr->slots.size();
  return slots * (2 * S + 2) + S;
}

std::size_t LvrmSystem::fabric_ring_count() const {
  // The fabric: one MPMC ingress link per slot (all shards produce into
  // it), two control rings per slot, one MPMC TX link per shard (all of the
  // shard's homed slots produce into it) plus the shard's RX ring.
  const std::size_t S = shards_.size();
  std::size_t slots = 0;
  for (const auto& vr : vrs_) slots += vr->slots.size();
  return slots * 3 + 2 * S;
}

std::size_t LvrmSystem::mesh_ring_bytes() const {
  // Mesh data rings carry full FrameMeta records (the mesh predates the
  // descriptor fabric), control rings are sized like the mesh arena sizes
  // them today (data capacity); RX rings are identical under both
  // topologies and excluded from both sides.
  const std::size_t S = shards_.size();
  std::size_t slots = 0;
  for (const auto& vr : vrs_) slots += vr->slots.size();
  const std::size_t data = config_.data_queue_capacity * sizeof(net::FrameMeta);
  return slots * (2 * S * data + 2 * data);
}

std::size_t LvrmSystem::fabric_ring_bytes() const {
  // Mirrors what the fabric arena actually reserves: per slot one ingress
  // link (FrameHandle elements in descriptor mode) + two control rings at
  // the control capacity; per shard one TX link.
  const std::size_t S = shards_.size();
  std::size_t slots = 0;
  for (const auto& vr : vrs_) slots += vr->slots.size();
  const std::size_t elem = config_.descriptor_rings ? sizeof(net::FrameHandle)
                                                    : sizeof(net::FrameMeta);
  const std::size_t link = config_.data_queue_capacity * elem;
  const std::size_t ctrl =
      config_.control_queue_capacity * sizeof(net::FrameMeta);
  return slots * (link + 2 * ctrl) + S * link;
}

std::size_t LvrmSystem::spray_active_flows() const {
  std::size_t n = 0;
  for (const auto& vr : vrs_) n += vr->sprays.size();
  return n;
}

std::size_t LvrmSystem::seq_held_frames() const {
  std::size_t n = 0;
  for (const auto& vr : vrs_)
    for (const auto& [id, so] : vr->seq_out) n += so.live;  // frames, not tombstones
  return n;
}

std::uint64_t LvrmSystem::vr_policy_drops(int vr) const {
  std::uint64_t total = 0;
  for (const auto& slot : vrs_.at(static_cast<std::size_t>(vr))->slots)
    total += slot->policy_drops;
  return total;
}

// --- core allocation --------------------------------------------------------------------

void LvrmSystem::inject_vri_crash(int vr_id, int vri) {
  VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));
  VriSlot& slot = *vr.slots.at(static_cast<std::size_t>(vri));
  if (!slot.active) return;
  slot.crashed = true;
  slot.server->stop();  // the process is gone; its queues go stale
}

void LvrmSystem::inject_vri_hang(int vr_id, int vri) {
  VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));
  VriSlot& slot = *vr.slots.at(static_cast<std::size_t>(vri));
  if (!slot.active || slot.crashed) return;
  slot.hung = true;
  slot.server->stop();  // alive but frozen; queues keep filling
}

void LvrmSystem::clear_vri_hang(int vr_id, int vri) {
  VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));
  VriSlot& slot = *vr.slots.at(static_cast<std::size_t>(vri));
  // If the health layer already quarantined and respawned the slot, the
  // stall is over anyway and there is nothing to resume.
  if (!slot.active || !slot.hung) return;
  slot.hung = false;
  slot.server->start();
}

void LvrmSystem::inject_vri_slowdown(int vr_id, int vri, double multiplier) {
  VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));
  VriSlot& slot = *vr.slots.at(static_cast<std::size_t>(vri));
  slot.degrade = multiplier > 0.0 ? multiplier : 1.0;
}

void LvrmSystem::inject_control_loss(int vr_id, int vri,
                                     double drop_probability) {
  VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));
  VriSlot& slot = *vr.slots.at(static_cast<std::size_t>(vri));
  slot.ctrl_loss_prob = drop_probability;
}

void LvrmSystem::inject_overload_burst(int vr_id, double fps, Nanos duration) {
  if (fps <= 0.0 || duration <= 0) return;
  const Nanos gap = std::max<Nanos>(1, static_cast<Nanos>(1e9 / fps));
  burst_step(vr_id, gap, sim_.now() + duration);
}

void LvrmSystem::burst_step(int vr_id, Nanos gap, Nanos until) {
  if (sim_.now() > until) return;
  const VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));
  const net::Prefix& p = vr.cfg.subnets.front();
  ++burst_seq_;
  net::FrameMeta f;
  // High id bit-space keeps burst frames distinguishable from a workload
  // generator's ids in traces without any coordination.
  f.id = 0x4000000000000000ull + burst_seq_;
  f.kind = net::FrameKind::kUdp;
  f.protocol = 17;
  f.wire_bytes = 84;
  // 64 synthetic flows inside the VR's own first subnet: they classify to
  // the target VR, route under its own prefix, and compete with real
  // traffic for the same rings, pool slots and queues the ladder protects.
  f.src_ip = p.network + 2 + static_cast<net::Ipv4Addr>(burst_seq_ % 64);
  f.dst_ip = p.network + 1;
  f.src_port = static_cast<std::uint16_t>(40000 + burst_seq_ % 64);
  f.dst_port = 9;
  f.created_at = sim_.now();
  ingress(std::move(f));  // its drops are counted like any other ingress
  sim_.after(gap, [this, vr_id, gap, until] { burst_step(vr_id, gap, until); });
}

bool LvrmSystem::decommission_vri(int vr_id, int vri) {
  VrState& vr = *vrs_.at(static_cast<std::size_t>(vr_id));
  VriSlot& slot = *vr.slots.at(static_cast<std::size_t>(vri));
  if (!slot.active || slot.crashed || slot.draining) return false;
  drain_slot(vr, slot, DrainCause::kDecommission);
  return true;
}

void LvrmSystem::drain_slot(VrState& vr, VriSlot& slot, DrainCause cause,
                            std::function<void(const DrainEvent&)> done) {
  if (slot.draining) return;  // a quiesce is already in flight
  slot.draining = true;
  // Stop cleanly: the in-service frame (if any) completes and drains out
  // through data_out as usual; nothing new is popped afterwards. Until it
  // has, the slot stays active and pinned so same-flow arrivals keep
  // queueing FIFO behind the backlog — migrating the backlog while a frame
  // is still in service would let its redispatched successors overtake it
  // through a shorter sibling queue. Slot pointers are heap-stable
  // (vector<unique_ptr>), so the deferred references stay valid.
  slot.server->quiesce([this, &vr, &slot, cause, done = std::move(done)] {
    finish_drain(vr, slot, cause, done);
  });
}

void LvrmSystem::finish_drain(
    VrState& vr, VriSlot& slot, DrainCause cause,
    const std::function<void(const DrainEvent&)>& done) {
  // Aborted while quiescing (a crash + reap can beat the in-service
  // completion): the crash path already disposed of the backlog and pins.
  if (!slot.draining || !slot.active || slot.crashed) return;
  slot.draining = false;

  const Nanos now = sim_.now();
  DrainEvent ev;
  ev.time = now;
  ev.vr = vr.id;
  ev.vri = slot.index;
  ev.cause = cause;

  slot.active = false;
  std::erase(vr.active_order, slot.index);
  bump_pool_generation(vr);
  if (slot.migration_event != sim::kInvalidEvent) {
    sim_.cancel(slot.migration_event);
    slot.migration_event = sim::kInvalidEvent;
  }

  // Pop the backlog in FIFO order BEFORE evicting the flow pins, so the
  // redispatch below re-pins every live flow exactly once at its new home
  // and same-flow frames stay in arrival order end to end.
  std::vector<net::FrameCell> live;
  while (!slot.data_in->empty()) live.push_back(slot.data_in->pop());
  for (auto& d : vr.dispatchers)
    ev.flows_evicted += d->on_vri_destroyed(slot.index);
  flows_migrated_ += ev.flows_evicted;

  audit_vri_change(vr, slot, /*create=*/false, /*from_recovery=*/false);
  release_core(slot.core_id);
  slot.core_id = sim::kNoCore;
  if (health_) health_->forget(vr.id, slot.index);
  // Reset-free: needs_rebuild stays false — the router keeps its applied
  // route state (broadcast_route_update also updates inactive slots), so a
  // later activation skips the fork and the route-log replay entirely.

  if (!live.empty()) {
    if (vr.active_order.empty()) {
      ev.dropped = live.size();
      vr.data_drops += live.size();
      for (auto& c : live) {
        note_drop(meta_of(c), DropCause::kVriDestroyed);
        drop_cell(std::move(c));
      }
    } else {
      ev.migrated = redispatch(vr, live);
      ev.dropped = live.size() - ev.migrated;
      redispatched_ += ev.migrated;
    }
  }
  LVRM_CLOG(kAlloc, kInfo) << "vr=" << vr.id << " vri=" << slot.index
                           << " drained (" << to_string(cause)
                           << "): migrated=" << ev.migrated
                           << " dropped=" << ev.dropped
                           << " flows_evicted=" << ev.flows_evicted;

  // Charon-style ownership handoff: each surviving sibling learns over the
  // control rings that it now owns part of the drained slot's flows; the
  // drain event records the slowest sibling's apply latency.
  const std::size_t di = drain_log_.size();
  drain_log_.push_back(ev);
  for (const int idx : vr.active_order) {
    send_control(vr.id, slot.index, idx, /*bytes=*/80, [this, di](Nanos lat) {
      drain_log_[di].handoff_latency =
          std::max(drain_log_[di].handoff_latency, lat);
    });
  }

  if (telemetry_) {
    obs::AuditEvent ae;
    ae.time = now;
    ae.until = now;
    ae.kind = obs::AuditKind::kVriDrain;
    ae.vr = static_cast<std::int16_t>(vr.id);
    ae.vri = static_cast<std::int16_t>(slot.index);
    ae.cause = static_cast<std::uint8_t>(cause);
    ae.rate = arrival_rate_estimate(vr.id);
    ae.service = measured_service_rate(vr);
    ae.a = ev.migrated;
    ae.b = ev.flows_evicted;
    ae.c = ev.dropped;
    telemetry_->audit().record(ae);
  }
  if (done) done(ev);
}

void LvrmSystem::reap_crashed() {
  for (auto& vrp : vrs_) {
    VrState& vr = *vrp;
    std::vector<net::FrameCell> stranded;
    for (auto it = vr.active_order.begin(); it != vr.active_order.end();) {
      VriSlot& slot = *vr.slots[static_cast<std::size_t>(*it)];
      if (!slot.crashed) {
        ++it;
        continue;
      }
      // §15 black box: snapshot the flight recorders before the rescue path
      // rewrites the dead incarnation's queues — the dump is the record of
      // what was in flight when the crash was noticed.
      if (tracer_)
        trace_flight_dump(obs::FlightDumpCause::kVriCrash, slot.home_shard,
                          vr.id, slot.index);
      // waitpid()-style reaping: free the core, rescue (health layer) or
      // discard the dead process' queued frames, drop its flow pins. In
      // descriptor mode the rescue moves handles, not payloads — and the
      // discard path must release their pool slots (no leaks on crash).
      if (health_ && config_.health.redispatch_stranded) {
        while (!slot.data_in->empty()) stranded.push_back(slot.data_in->pop());
      } else {
        vr.data_drops += drain_and_drop(*slot.data_in,
                                        DropCause::kVriDestroyed);
      }
      discard_stale_control(slot);
      slot.active = false;
      slot.crashed = false;
      slot.draining = false;  // a crash mid-quiesce aborts the drain
      slot.needs_rebuild = true;  // a replacement is a fresh fork
      if (slot.migration_event != sim::kInvalidEvent) {
        sim_.cancel(slot.migration_event);
        slot.migration_event = sim::kInvalidEvent;
      }
      LVRM_CLOG(kHealth, kWarn) << "vr=" << vr.id << " vri=" << slot.index
                                << " reaped after crash";
      it = vr.active_order.erase(it);
      bump_pool_generation(vr);
      audit_vri_change(vr, slot, /*create=*/false, /*from_recovery=*/true);
      release_core(slot.core_id);
      slot.core_id = sim::kNoCore;
      for (auto& d : vr.dispatchers) d->on_vri_destroyed(slot.index);
      if (health_) health_->forget(vr.id, slot.index);
      ++crashes_reaped_;
    }
    // The fixed allocator promised a fixed core set: respawn replacements.
    if (allocator_->kind() == AllocatorKind::kFixed) {
      while (static_cast<int>(vr.active_order.size()) <
             std::max(1, vr.cfg.initial_vris))
        activate_vri(vr, /*from_recovery=*/true);
    }
    if (!stranded.empty()) {
      if (vr.active_order.empty()) {
        vr.data_drops += stranded.size();
        for (auto& c : stranded) drop_cell(std::move(c));
      } else {
        redispatched_ += redispatch(vr, stranded);
      }
    }
  }
}

void LvrmSystem::discard_stale_control(VriSlot& slot) {
  // The dead incarnation's control queues die with it (fresh segments are
  // allocated at respawn): in-flight events are lost, and their delivery
  // callbacks with them. Counted as control drops, never silent.
  while (!slot.ctrl_in->empty()) {
    const net::FrameMeta f = take_cell(slot.ctrl_in->pop());
    control_cbs_.erase(f.id);
    ++control_drops_;
  }
  while (!slot.ctrl_out->empty()) {
    const net::FrameMeta f = take_cell(slot.ctrl_out->pop());
    control_cbs_.erase(f.id);
    ++control_drops_;
  }
}

std::size_t LvrmSystem::redispatch(VrState& vr,
                                   std::vector<net::FrameCell>& cells) {
  const Nanos now = sim_.now();
  std::vector<VriView> views;
  views.reserve(vr.active_order.size());
  for (int idx : vr.active_order) {
    VriSlot& s = *vr.slots[static_cast<std::size_t>(idx)];
    views.push_back(VriView{idx, s.estimator->load_at(now), s.suspect});
  }
  std::size_t admitted = 0;
  for (net::FrameCell& c : cells) {
    net::FrameMeta& f = meta_of(c);
    // Re-dispatch through the frame's own shard's dispatcher so flow pins
    // stay consistent within the shard that owns the flow.
    const std::size_t shard =
        f.dispatch_shard >= 0 ? static_cast<std::size_t>(f.dispatch_shard) : 0;
    const int chosen = vr.dispatchers[shard]->dispatch(f, views, now);
    f.dispatch_vri = static_cast<std::int16_t>(chosen);
    VriSlot& target = *vr.slots[static_cast<std::size_t>(chosen)];
    if (push_cell_or_note(*target.data_in, std::move(c),
                          DropCause::kQueueFull)) {
      target.estimator->on_dispatch(target.data_in->size(), now);
      ++admitted;
    } else {
      ++vr.data_drops;  // survivors saturated: tail-drop the overflow
    }
  }
  lvrm_core().charge(
      static_cast<Nanos>(cells.size()) * costs::kRedispatchPerFrame,
      CostCategory::kSystem);
  return admitted;
}

void LvrmSystem::maybe_allocate() {
  const Nanos now = sim_.now();
  if (now - last_alloc_pass_ < config_.realloc_period) return;
  last_alloc_pass_ = now;
  reap_crashed();
  // §16: idle-expire sprayed flows and drained sequencers (1 s cadence).
  if (replication_) spray_gc(now);
  // Audit: per-VR balancer summaries and shed-episode closure ride the
  // allocation pass (the decision cadence of the whole system).
  if (telemetry_) audit_balance_and_shed(now);
  if (allocator_->kind() == AllocatorKind::kFixed) return;

  const Nanos iterate =
      costs::kAllocIterateBase +
      costs::kAllocIteratePerVri * total_active_vris();

  for (auto& vrp : vrs_) {
    VrState& vr = *vrp;
    const VrAllocView view = alloc_view(vr);
    const AllocDecision decision = allocator_->decide(view);

    const double jitter =
        1.0 + costs::kAllocJitter * (rng_.uniform01() * 2.0 - 1.0);

    if (decision == AllocDecision::kCreate &&
        view.active_vris < config_.max_vris_per_vr) {
      LVRM_CLOG(kAlloc, kInfo)
          << "vr=" << vr.id << " create: arrival=" << view.arrival_rate_fps
          << " fps >= capacity=" << allocator_->capacity_fps(view)
          << " fps (" << view.active_vris << " vris)";
      activate_vri(vr);
      const Nanos reaction = static_cast<Nanos>(
          static_cast<double>(iterate + costs::kAllocateBase +
                              costs::kAllocatePerVri * total_active_vris()) *
          jitter);
      lvrm_core().charge(reaction, CostCategory::kSystem);  // vfork + setup
      alloc_log_.push_back(AllocationEvent{
          now, vr.id, true, reaction,
          static_cast<int>(vr.active_order.size()), total_active_vris()});
      return;  // Fig 3.2: one action per pass
    }
    if (decision == AllocDecision::kDestroy && view.active_vris > 1) {
      LVRM_CLOG(kAlloc, kInfo)
          << "vr=" << vr.id << " destroy: arrival=" << view.arrival_rate_fps
          << " fps under capacity=" << allocator_->capacity_fps(view)
          << " fps (" << view.active_vris << " vris)";
      deactivate_vri(vr);
      const Nanos reaction = static_cast<Nanos>(
          static_cast<double>(iterate + costs::kDeallocateBase +
                              costs::kDeallocatePerVri * total_active_vris()) *
          jitter);
      lvrm_core().charge(reaction, CostCategory::kSystem);  // kill + teardown
      alloc_log_.push_back(AllocationEvent{
          now, vr.id, false, reaction,
          static_cast<int>(vr.active_order.size()), total_active_vris()});
      return;
    }
  }
}

// --- health monitoring & recovery -------------------------------------------------

void LvrmSystem::maybe_health_probe() {
  if (!health_) return;
  const Nanos now = sim_.now();
  if (now - last_health_probe_ < config_.health.probe_period) return;
  last_health_probe_ = now;
  // The probe itself: LVRM reads each VRI's progress counter and queue
  // depth out of the shared segments — cheap, hence the short period.
  lvrm_core().charge(costs::kHealthProbeBase +
                         costs::kHealthProbePerVri * total_active_vris(),
                     CostCategory::kSystem);

  for (auto& vrp : vrs_) {
    VrState& vr = *vrp;
    if (vr.active_order.empty()) continue;
    std::vector<VriProbe> probes;
    probes.reserve(vr.active_order.size());
    for (int idx : vr.active_order) {
      VriSlot& s = *vr.slots[static_cast<std::size_t>(idx)];
      probes.push_back(VriProbe{idx, !s.crashed, s.server->served(),
                                s.data_in->size(), vri_departure_rate(s)});
    }
    const auto verdicts = health_->probe(vr.id, probes, now);
    for (const HealthVerdict& v : verdicts)
      recover_slot(vr, *vr.slots[static_cast<std::size_t>(v.vri)], v.state,
                   v.stalled_for);
    // Refresh the grace-window marks the dispatcher steers around. Only an
    // actual flip invalidates the cached healthy pool.
    bool suspicion_changed = false;
    for (int idx : vr.active_order) {
      VriSlot& s = *vr.slots[static_cast<std::size_t>(idx)];
      const bool suspect = health_->is_suspect(vr.id, idx);
      if (suspect != s.suspect) {
        s.suspect = suspect;
        suspicion_changed = true;
      }
    }
    if (suspicion_changed) bump_pool_generation(vr);
  }
}

void LvrmSystem::recover_slot(VrState& vr, VriSlot& slot, VriHealth reason,
                              Nanos stalled_for) {
  if (slot.draining) return;  // a reset-free drain is already quiescing it
  const Nanos now = sim_.now();
  RecoveryEvent ev;
  ev.time = now;
  ev.vr = vr.id;
  ev.vri = slot.index;
  ev.reason = reason;
  ev.stalled_for = stalled_for;
  ev.stranded = slot.data_in->size();

  if (reason == VriHealth::kFailSlow && config_.overload_control.enabled &&
      config_.overload_control.drain_on_destroy &&
      vr.active_order.size() > 1) {
    // Reset-free quarantine (DESIGN.md §13): a fail-slow process is alive —
    // it can be stopped cleanly and its backlog migrated over the normal
    // dispatch path, so nothing is lost and the router state stays warm.
    // The injected degrade stays with the process (it was never killed);
    // only the suspicion marks are cleared so a later reactivation is not
    // penalized by stale dispatch steering.
    slot.hung = false;
    slot.suspect = false;
    // §15: a fail-slow quarantine is an incident even when it drains
    // reset-free — dump before the migration rewrites the queues.
    if (tracer_)
      trace_flight_dump(obs::FlightDumpCause::kQuarantine, slot.home_shard,
                        vr.id, slot.index);
    // The quiesce may outlive this call (the slow in-service frame has to
    // egress first), so the recovery record lands when the drain completes.
    drain_slot(vr, slot, DrainCause::kFailSlow,
               [this, &vr, ev, stalled_for](const DrainEvent& dev) mutable {
                 ev.redispatched = dev.migrated;
                 recovery_log_.push_back(ev);
                 if (telemetry_) {
                   obs::AuditEvent ae;
                   ae.time = ev.time;
                   ae.until = dev.time;
                   ae.kind = obs::AuditKind::kHealthFailSlow;
                   ae.vr = static_cast<std::int16_t>(ev.vr);
                   ae.vri = static_cast<std::int16_t>(ev.vri);
                   ae.rate = static_cast<double>(stalled_for);
                   ae.threshold =
                       static_cast<double>(config_.health.heartbeat_timeout);
                   ae.service = measured_service_rate(vr);
                   ae.a = ev.stranded;
                   ae.b = ev.redispatched;
                   ae.c = 0;  // reset-free: no respawn, stays warm
                   telemetry_->audit().record(ae);
                 }
               });
    return;
  }

  // §15 black box: the health monitor quarantining a VRI is an incident —
  // the dump captures what the pipeline was doing in the milliseconds
  // before the verdict, including this VRI's in-flight frames.
  if (tracer_)
    trace_flight_dump(obs::FlightDumpCause::kQuarantine, slot.home_shard,
                      vr.id, slot.index);

  // Quarantine: kill the incarnation (hung/slow processes get SIGKILL; a
  // dead one needs no kill) and take it out of the dispatch set.
  slot.server->stop();
  slot.crashed = false;
  slot.hung = false;
  slot.degrade = 1.0;  // the sickness dies with the process
  slot.ctrl_loss_prob = 0.0;
  slot.suspect = false;
  slot.needs_rebuild = true;

  // Rescue the frames stranded in the dead incarnation's incoming queue
  // before its segments are torn down (handles move payload-free; the
  // discard path releases their pool slots so a crash leaks nothing).
  std::vector<net::FrameCell> stranded;
  if (config_.health.redispatch_stranded) {
    while (!slot.data_in->empty()) stranded.push_back(slot.data_in->pop());
  } else {
    vr.data_drops += drain_and_drop(*slot.data_in, DropCause::kVriDestroyed);
  }
  discard_stale_control(slot);

  slot.active = false;
  std::erase(vr.active_order, slot.index);
  bump_pool_generation(vr);
  if (slot.migration_event != sim::kInvalidEvent) {
    sim_.cancel(slot.migration_event);
    slot.migration_event = sim::kInvalidEvent;
  }
  LVRM_CLOG(kHealth, kWarn)
      << "vr=" << vr.id << " vri=" << slot.index << " quarantined ("
      << to_string(reason) << "), stalled_for=" << stalled_for << " ns, "
      << ev.stranded << " stranded";
  audit_vri_change(vr, slot, /*create=*/false, /*from_recovery=*/true);
  release_core(slot.core_id);
  slot.core_id = sim::kNoCore;
  for (auto& d : vr.dispatchers) d->on_vri_destroyed(slot.index);
  health_->forget(vr.id, slot.index);

  // Respawn policy: the fixed allocator promised a fixed set; the dynamic
  // allocators respawn when the arrival rate still demands the lost
  // capacity (else the Fig 3.2 pass regrows on its own schedule). A VR is
  // never left with zero VRIs.
  bool respawn = vr.active_order.empty();
  if (allocator_->kind() == AllocatorKind::kFixed) {
    respawn = respawn || static_cast<int>(vr.active_order.size()) <
                             std::max(1, vr.cfg.initial_vris);
  } else {
    const VrAllocView view = alloc_view(vr);
    respawn =
        respawn || view.arrival_rate_fps > allocator_->capacity_fps(view);
  }
  if (respawn) {
    activate_slot(vr, slot, /*from_recovery=*/true);
    const Nanos reaction =
        costs::kAllocateBase + costs::kAllocatePerVri * total_active_vris() +
        static_cast<Nanos>(vr.route_log.size()) * costs::kRouteReplayPerUpdate;
    lvrm_core().charge(reaction, CostCategory::kSystem);  // vfork + replay
    ev.respawned = true;
  }

  // Re-dispatch rescued frames across the (possibly regrown) active set.
  if (!stranded.empty()) {
    if (vr.active_order.empty()) {
      vr.data_drops += stranded.size();
      for (auto& c : stranded) drop_cell(std::move(c));
    } else {
      ev.redispatched = redispatch(vr, stranded);
      redispatched_ += ev.redispatched;
    }
  }
  recovery_log_.push_back(ev);

  if (telemetry_) {
    obs::AuditEvent ae;
    ae.time = now;
    ae.until = now;
    switch (reason) {
      case VriHealth::kDead: ae.kind = obs::AuditKind::kHealthDead; break;
      case VriHealth::kHung: ae.kind = obs::AuditKind::kHealthHung; break;
      default: ae.kind = obs::AuditKind::kHealthFailSlow; break;
    }
    ae.vr = static_cast<std::int16_t>(vr.id);
    ae.vri = static_cast<std::int16_t>(slot.index);
    ae.rate = static_cast<double>(stalled_for);
    ae.threshold = static_cast<double>(config_.health.heartbeat_timeout);
    ae.service = measured_service_rate(vr);
    ae.a = ev.stranded;
    ae.b = ev.redispatched;
    ae.c = ev.respawned ? 1 : 0;
    telemetry_->audit().record(ae);
  }
}

void LvrmSystem::activate_vri(VrState& vr, bool from_recovery) {
  // First inactive slot.
  VriSlot* slot = nullptr;
  for (auto& s : vr.slots) {
    if (!s->active) {
      slot = s.get();
      break;
    }
  }
  if (!slot) return;  // every slot already active
  activate_slot(vr, *slot, from_recovery);
}

void LvrmSystem::activate_slot(VrState& vr, VriSlot& slot,
                               bool from_recovery) {
  // A slot whose previous incarnation died is a *fresh fork*: it starts
  // from the VR's static configuration, so the dynamic route updates
  // applied since start are replayed into it before it serves traffic.
  if (slot.needs_rebuild) rebuild_router(vr, slot);
  // Anchor placement at the slot's home shard: its LVRM-side queue ends
  // live there, so that is the socket worth staying close to.
  const NumaPick pick =
      pick_core(shards_[static_cast<std::size_t>(slot.home_shard)].core_id);
  const sim::CoreId core_id = pick.core;
  slot.core_id = core_id;
  slot.numa_tier = pick.tier;
  slot.server->migrate(core(core_id), 0);
  slot.estimator->reset();
  slot.service_time.reset();
  slot.active = true;
  slot.activated_at = sim_.now();
  vr.active_order.push_back(slot.index);
  bump_pool_generation(vr);
  slot.server->start();
  LVRM_CLOG(kAlloc, kDebug) << "vr=" << vr.id << " vri=" << slot.index
                            << " activated on core=" << core_id
                            << (from_recovery ? " (respawn)" : "");
  audit_vri_change(vr, slot, /*create=*/true, from_recovery);
  if (config_.affinity == AffinityPolicy::kDefault) schedule_migration(slot);
}

void LvrmSystem::rebuild_router(VrState& vr, VriSlot& slot) {
  // Same factory seam as add_vr: a respawn rebuilds exactly what the slot
  // started with, stateful wrapper included (its flow state starts empty —
  // a fresh fork remembers nothing; §16 deltas repopulate it as siblings
  // keep replicating).
  slot.router = make_configured_vr(vr.cfg, vr.cfg.route_map);
  // Routing-state resync (Sec 2.1): replay the dynamic updates the previous
  // incarnation had applied, so the replacement matches its siblings.
  for (const route::RouteUpdate& u : vr.route_log)
    slot.router->apply_route_update(u);
  // Fresh shared-memory segments for the new process' queues (Sec 3.8).
  for (int q = 0; q < 4; ++q) {
    arena_.destroy(slot.shm_ids[q]);
    slot.shm_ids[q] =
        arena_.create(config_.data_queue_capacity * sizeof(net::FrameMeta));
  }
  slot.needs_rebuild = false;
}

void LvrmSystem::deactivate_vri(VrState& vr) {
  if (vr.active_order.empty()) return;
  const int idx = vr.active_order.back();
  VriSlot& slot = *vr.slots[static_cast<std::size_t>(idx)];
  if (slot.draining) return;  // quiescing already; retry next pass
  if (config_.overload_control.enabled &&
      config_.overload_control.drain_on_destroy &&
      vr.active_order.size() > 1) {
    // Reset-free destroy (DESIGN.md §13): the allocator's scale-down stops
    // the VRI but migrates its backlog and flow pins to the survivors —
    // Fig 3.2's semantics without the frame loss.
    drain_slot(vr, slot, DrainCause::kAllocatorDestroy);
    return;
  }
  vr.active_order.pop_back();
  slot.active = false;
  bump_pool_generation(vr);
  slot.server->stop();
  // Fig 3.2 "destroy": queues are destroyed, so queued frames are lost
  // (their pool slots are recycled in descriptor mode).
  vr.data_drops += drain_and_drop(*slot.data_in, DropCause::kVriDestroyed);
  if (slot.migration_event != sim::kInvalidEvent) {
    sim_.cancel(slot.migration_event);
    slot.migration_event = sim::kInvalidEvent;
  }
  LVRM_CLOG(kAlloc, kDebug) << "vr=" << vr.id << " vri=" << idx
                            << " deactivated, core=" << slot.core_id
                            << " released";
  audit_vri_change(vr, slot, /*create=*/false, /*from_recovery=*/false);
  release_core(slot.core_id);
  slot.core_id = sim::kNoCore;
  for (auto& d : vr.dispatchers) d->on_vri_destroyed(idx);
}

NumaPick LvrmSystem::pick_core(sim::CoreId anchor) {
  auto first_free = [this](const std::vector<sim::CoreId>& candidates) {
    for (sim::CoreId c : candidates)
      if (!core_used_[static_cast<std::size_t>(c)]) return c;
    return sim::kNoCore;
  };

  sim::CoreId chosen = sim::kNoCore;
  switch (config_.affinity) {
    case AffinityPolicy::kSibling:
      // Two-level preference (DESIGN.md §11): same socket as the anchoring
      // shard, then same machine, then remote. On a single machine this is
      // exactly the paper's sibling-then-non-sibling order.
      chosen = pick_numa_core(topo_, core_used_, anchor).core;
      break;
    case AffinityPolicy::kNonSibling:
      chosen = first_free(topo_.non_siblings_of(anchor));
      if (chosen == sim::kNoCore)
        chosen = first_free(topo_.siblings_of(anchor));
      break;
    case AffinityPolicy::kSame:
      return NumaPick{anchor, NumaTier::kSameSocket};
    case AffinityPolicy::kDefault: {
      std::vector<sim::CoreId> free_cores;
      for (sim::CoreId c = 0; c < topo_.total_cores(); ++c)
        if (!core_used_[static_cast<std::size_t>(c)]) free_cores.push_back(c);
      if (!free_cores.empty())
        chosen = free_cores[rng_.uniform(free_cores.size())];
      break;
    }
  }
  if (chosen == sim::kNoCore) {
    // Over-commit: the VRI lands on its home shard's core and time-shares
    // it (the contention Exp 2b observes past the available core count).
    return NumaPick{anchor, NumaTier::kNone};
  }
  core_used_[static_cast<std::size_t>(chosen)] = true;
  return NumaPick{chosen, numa_tier_of(topo_, anchor, chosen)};
}

sim::CoreId LvrmSystem::pick_shard_core(int shard) {
  // Spread shards round-robin across sockets, first free core of the
  // preferred socket; any free core otherwise. A plane wider than the
  // machine time-shares the LVRM core (documented over-commit).
  const int preferred =
      (topo_.socket_of(config_.lvrm_core) + shard) % topo_.sockets();
  sim::CoreId fallback = sim::kNoCore;
  for (sim::CoreId c = 0; c < topo_.total_cores(); ++c) {
    if (core_used_[static_cast<std::size_t>(c)]) continue;
    if (topo_.socket_of(c) == preferred) {
      core_used_[static_cast<std::size_t>(c)] = true;
      return c;
    }
    if (fallback == sim::kNoCore) fallback = c;
  }
  if (fallback != sim::kNoCore) {
    core_used_[static_cast<std::size_t>(fallback)] = true;
    return fallback;
  }
  return config_.lvrm_core;
}

void LvrmSystem::release_core(sim::CoreId id) {
  if (id == sim::kNoCore) return;
  for (const auto& sh : shards_)
    if (id == sh.core_id) return;  // dispatcher cores are never released
  core_used_[static_cast<std::size_t>(id)] = false;
}

void LvrmSystem::schedule_migration(VriSlot& slot) {
  const auto gap = static_cast<Nanos>(rng_.exponential(
      static_cast<double>(costs::kMigrationMeanPeriod)));
  slot.migration_event = sim_.after(std::max<Nanos>(gap, usec(50)), [this,
                                                                     &slot] {
    slot.migration_event = sim::kInvalidEvent;
    if (!slot.active) return;
    // The kernel rebalances the VRI onto some other free core when one
    // exists; either way caches are cold afterwards.
    std::vector<sim::CoreId> free_cores;
    for (sim::CoreId c = 0; c < topo_.total_cores(); ++c)
      if (!core_used_[static_cast<std::size_t>(c)] && c != slot.core_id)
        free_cores.push_back(c);
    if (!free_cores.empty()) {
      const sim::CoreId next = free_cores[rng_.uniform(free_cores.size())];
      release_core(slot.core_id);
      core_used_[static_cast<std::size_t>(next)] = true;
      slot.server->migrate(core(next), costs::kMigrationPenalty);
      slot.core_id = next;
    } else {
      core(slot.core_id).charge(costs::kMigrationPenalty,
                                CostCategory::kSystem);
    }
    slot.cold_until = sim_.now() + costs::kColdCacheWindow;
    schedule_migration(slot);
  });
}

// --- helpers / accessors ------------------------------------------------------------------

bool LvrmSystem::cross_socket(sim::CoreId a, sim::CoreId b) const {
  return a != sim::kNoCore && b != sim::kNoCore && !topo_.siblings(a, b);
}

int LvrmSystem::total_active_vris() const {
  int total = 0;
  for (const auto& vr : vrs_) total += static_cast<int>(vr->active_order.size());
  return total;
}

double LvrmSystem::measured_service_rate(const VrState& vr) const {
  double sum = 0.0;
  int n = 0;
  for (int idx : vr.active_order) {
    const VriSlot& s = *vr.slots[static_cast<std::size_t>(idx)];
    if (s.service_time.valid() && s.service_time.value() > 0.0) {
      sum += 1e9 / s.service_time.value();
      ++n;
    }
  }
  return n ? sum / n : 0.0;
}

double LvrmSystem::vri_departure_rate(const VriSlot& slot) const {
  if (!slot.service_time.valid() || slot.service_time.value() <= 0.0)
    return 0.0;
  return 1e9 / slot.service_time.value();
}

VrAllocView LvrmSystem::alloc_view(const VrState& vr) const {
  VrAllocView view;
  view.active_vris = static_cast<int>(vr.active_order.size());
  view.arrival_rate_fps = arrival_rate_estimate(vr.id);
  view.service_rate_per_vri = measured_service_rate(vr);
  return view;
}

bool LvrmSystem::any_free_core() const {
  for (std::size_t c = 0; c < core_used_.size(); ++c)
    if (!core_used_[c] && static_cast<sim::CoreId>(c) != config_.lvrm_core)
      return true;
  return false;
}

int LvrmSystem::active_vris(int vr) const {
  return static_cast<int>(
      vrs_.at(static_cast<std::size_t>(vr))->active_order.size());
}

std::vector<sim::CoreId> LvrmSystem::vri_cores(int vr) const {
  std::vector<sim::CoreId> out;
  const VrState& v = *vrs_.at(static_cast<std::size_t>(vr));
  for (int idx : v.active_order)
    out.push_back(v.slots[static_cast<std::size_t>(idx)]->core_id);
  return out;
}

double LvrmSystem::arrival_rate_estimate(int vr) const {
  const VrState& v = *vrs_.at(static_cast<std::size_t>(vr));
  if (!v.arrival_gap.valid() || v.arrival_gap.value() <= 0.0) return 0.0;
  return 1e9 / v.arrival_gap.value();
}

double LvrmSystem::service_rate_estimate(int vr) const {
  return measured_service_rate(*vrs_.at(static_cast<std::size_t>(vr)));
}

std::uint64_t LvrmSystem::vr_forwarded(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->forwarded;
}

std::uint64_t LvrmSystem::vri_forwarded(int vr, int vri) const {
  return vrs_.at(static_cast<std::size_t>(vr))
      ->slots.at(static_cast<std::size_t>(vri))
      ->forwarded;
}

std::uint64_t LvrmSystem::data_queue_drops() const {
  std::uint64_t total = 0;
  for (const auto& vr : vrs_) total += vr->data_drops;
  return total;
}

std::uint64_t LvrmSystem::no_route_drops() const {
  std::uint64_t total = 0;
  for (const auto& vr : vrs_)
    for (const auto& slot : vr->slots) total += slot->no_route;
  return total;
}

std::uint64_t LvrmSystem::shed_drops() const {
  std::uint64_t total = 0;
  for (const auto& vr : vrs_) total += vr->shed_drops;
  return total;
}

std::uint64_t LvrmSystem::vr_shed_drops(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->shed_drops;
}

OverloadLevel LvrmSystem::overload_level(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->level;
}

double LvrmSystem::sample_rate(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->sample_rate;
}

std::uint64_t LvrmSystem::vr_sampled_shed(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->sampled_shed;
}

std::uint64_t LvrmSystem::sampled_shed_drops() const {
  std::uint64_t total = 0;
  for (const auto& vr : vrs_) total += vr->sampled_shed;
  return total;
}

std::uint64_t LvrmSystem::vr_admission_rejected(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->admission_rejected;
}

std::uint64_t LvrmSystem::admission_rejected_drops() const {
  std::uint64_t total = 0;
  for (const auto& vr : vrs_) total += vr->admission_rejected;
  return total;
}

std::uint64_t LvrmSystem::vr_frames_in(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->frames_in;
}

double LvrmSystem::vr_offered_estimate(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->offered_estimate;
}

double LvrmSystem::capacity_estimate(int vr) const {
  return allocator_->capacity_fps(
      alloc_view(*vrs_.at(static_cast<std::size_t>(vr))));
}

const Dispatcher& LvrmSystem::dispatcher(int vr) const {
  return *vrs_.at(static_cast<std::size_t>(vr))->dispatchers.front();
}

const Dispatcher& LvrmSystem::dispatcher(int vr, int shard) const {
  return *vrs_.at(static_cast<std::size_t>(vr))
              ->dispatchers.at(static_cast<std::size_t>(shard));
}

void LvrmSystem::reset_accounting() {
  for (auto& c : cores_) c->reset_accounting();
}

Nanos LvrmSystem::vr_pipeline_latency(int vr) const {
  return vrs_.at(static_cast<std::size_t>(vr))->pipeline_latency;
}

// --- telemetry (DESIGN.md §10) ------------------------------------------------------

void LvrmSystem::audit_vri_change(VrState& vr, VriSlot& slot, bool create,
                                  bool from_recovery) {
  if (!telemetry_) return;
  // The cause fields capture the allocator's picture at decision time, so
  // the trail answers "why" without re-running the estimator. The threshold
  // is the capacity the rate was compared against, i.e. at the PRE-change
  // VRI count (alloc_view already reflects the change).
  VrAllocView view = alloc_view(vr);
  obs::AuditEvent e;
  e.time = sim_.now();
  e.until = e.time;
  e.kind = create ? obs::AuditKind::kVriCreate : obs::AuditKind::kVriDestroy;
  e.vr = static_cast<std::int16_t>(vr.id);
  e.vri = static_cast<std::int16_t>(slot.index);
  e.shard = static_cast<std::int16_t>(slot.home_shard);
  e.numa_tier = static_cast<std::int8_t>(slot.numa_tier);
  e.rate = view.arrival_rate_fps;
  view.active_vris += create ? -1 : 1;
  e.threshold = allocator_->capacity_fps(view);
  e.service = view.service_rate_per_vri;
  e.a = vr.active_order.size();  // VRI count after the change
  e.b = slot.core_id == sim::kNoCore
            ? ~std::uint64_t{0}
            : static_cast<std::uint64_t>(slot.core_id);
  e.c = from_recovery ? 1 : 0;
  telemetry_->audit().record(e);
}

obs::PathSpan LvrmSystem::span_of(const net::FrameMeta& f,
                                  std::uint8_t terminal) const {
  obs::PathSpan s;
  s.frame_id = f.id;
  s.vr = f.dispatch_vr;
  s.vri = f.dispatch_vri;
  s.shard = f.dispatch_shard;
  s.gw_in = f.gw_in_at;
  s.rx_serve = f.obs_rx_at;
  s.enq = f.obs_enq_at;
  s.svc_start = f.obs_svc_at;
  s.svc_end = f.obs_done_at;
  s.gw_out = f.gw_out_at;
  s.terminal = terminal;
  return s;
}

void LvrmSystem::trace_drop(const net::FrameMeta& f, DropCause cause) {
  // Every drop/shed/quarantine exit funnels through note_drop, so this one
  // hook gives the flight recorder (and sampled spans) the terminal hop of
  // every frame that never reached TX.
  const Nanos t = sim_.now();
  tracer_->record(f.dispatch_shard, obs::TraceHop::kDrop, f.id, f.dispatch_vr,
                  f.dispatch_vri, t, static_cast<std::uint32_t>(cause),
                  f.obs_sampled != 0);
  if (f.obs_sampled)
    tracer_->add_span(
        span_of(f, static_cast<std::uint8_t>(static_cast<int>(cause) + 1)));
}

void LvrmSystem::trace_flight_dump(obs::FlightDumpCause cause, int shard,
                                   int vr, int vri) {
  const std::uint64_t seq = tracer_->dump(sim_.now(), cause, shard, vr, vri);
  if (!telemetry_) return;
  obs::AuditEvent e;
  e.time = sim_.now();
  e.until = e.time;
  e.kind = obs::AuditKind::kFlightDump;
  e.vr = static_cast<std::int16_t>(vr);
  e.vri = static_cast<std::int16_t>(vri);
  e.shard = static_cast<std::int16_t>(shard);
  e.cause = static_cast<std::uint8_t>(cause);
  e.a = tracer_->last_dump_records();
  e.b = seq;
  e.c = tracer_->records_total();
  telemetry_->audit().record(e);
}

void LvrmSystem::close_shed_episode(VrState& vr, Nanos now) {
  if (!vr.shed_open) return;
  vr.shed_open = false;
  obs::AuditEvent e;
  e.time = vr.shed_start;
  e.until = now;
  e.kind = obs::AuditKind::kShedEpisode;
  e.vr = static_cast<std::int16_t>(vr.id);
  e.rate = vr.shed_rate;
  e.threshold = config_.shed_watermark;
  e.service = vr.shed_service;
  e.a = vr.shed_drops - vr.shed_at_open;
  telemetry_->audit().record(e);
  LVRM_CLOG(kShed, kInfo) << "vr=" << vr.id << " shedding closed: " << e.a
                          << " frames shed over " << (now - vr.shed_start)
                          << " ns";
}

void LvrmSystem::audit_balance_and_shed(Nanos now) {
  for (auto& vrp : vrs_) {
    VrState& vr = *vrp;
    // A pass with no new shed frames ends the episode.
    if (vr.shed_open && vr.shed_drops == vr.shed_last_seen)
      close_shed_episode(vr, now);
    vr.shed_last_seen = vr.shed_drops;

    const DispatchStats stats = vr.dispatch_stats();
    const std::uint64_t decisions = stats.decisions;
    const std::uint64_t hits = stats.flow_hits;
    if (decisions != vr.summary_decisions) {
      obs::AuditEvent e;
      e.time = now;
      e.until = now;
      e.kind = obs::AuditKind::kBalanceSummary;
      e.vr = static_cast<std::int16_t>(vr.id);
      e.rate = arrival_rate_estimate(vr.id);
      e.service = measured_service_rate(vr);
      e.a = decisions - vr.summary_decisions;
      e.b = hits - vr.summary_hits;
      e.c = vr.active_order.size();
      telemetry_->audit().record(e);
      vr.summary_decisions = decisions;
      vr.summary_hits = hits;
    }
  }
}

void LvrmSystem::maybe_snapshot() {
  const Nanos period = config_.telemetry.snapshot_period;
  if (period <= 0) return;
  const Nanos now = sim_.now();
  if (now - obs_->last_snapshot < period) return;
  obs_->last_snapshot = now;
  snapshot_telemetry();
}

void LvrmSystem::snapshot_telemetry() {
  if (!telemetry_) return;
  publish_gauges();
  telemetry_->take_snapshot(sim_.now());
}

void LvrmSystem::publish_gauges() {
  // Everything here reads accounting the system keeps anyway — queue depth
  // fields, dispatcher counters, poll-server counters — so the hot path
  // pays nothing for these series.
  auto& m = telemetry_->metrics();
  std::uint64_t ring_depth = 0, ring_drops = 0;
  std::uint64_t serve_events = 0, batches = 0, batch_items = 0;
  for (const auto& sh : shards_) {
    ring_depth += sh.rx_ring->size();
    ring_drops += sh.rx_ring->drops();
    serve_events += sh.server->serve_events();
    batches += sh.server->batches();
    batch_items += sh.server->batch_items();
  }
  m.gauge("lvrm_rx_ring_depth").set(static_cast<double>(ring_depth));
  m.gauge("lvrm_rx_ring_drops").set(static_cast<double>(ring_drops));
  m.gauge("lvrm_poll_serve_events").set(static_cast<double>(serve_events));
  m.gauge("lvrm_poll_batches").set(static_cast<double>(batches));
  m.gauge("lvrm_poll_batch_items").set(static_cast<double>(batch_items));
  if (shards_.size() > 1) {
    // Per-shard breakdowns exist only on a sharded plane so single-shard
    // exports match the unsharded build byte for byte.
    for (const auto& sh : shards_) {
      const std::string l = "shard=\"" + std::to_string(sh.id) + "\"";
      m.gauge("lvrm_rx_ring_depth", l)
          .set(static_cast<double>(sh.rx_ring->size()));
      m.gauge("lvrm_rx_ring_drops", l)
          .set(static_cast<double>(sh.rx_ring->drops()));
      m.gauge("lvrm_poll_serve_events", l)
          .set(static_cast<double>(sh.server->serve_events()));
      m.gauge("lvrm_shard_rx_admitted", l)
          .set(static_cast<double>(sh.rx_admitted));
      m.gauge("lvrm_shard_core", l).set(static_cast<double>(sh.core_id));
    }
  }
  if (tracer_) {
    // Trace gauges exist only with tracing on, so defaults-off exports stay
    // byte-identical (same rule as the pool and ladder gauges).
    m.gauge("lvrm_trace_sample_every")
        .set(static_cast<double>(tracer_->sample_every()));
    m.gauge("lvrm_trace_adaptations")
        .set(static_cast<double>(tracer_->adaptations()));
    m.gauge("lvrm_trace_records_total")
        .set(static_cast<double>(tracer_->records_total()));
    m.gauge("lvrm_trace_spans")
        .set(static_cast<double>(tracer_->spans().size()));
    m.gauge("lvrm_trace_spans_dropped")
        .set(static_cast<double>(tracer_->spans_dropped()));
    m.gauge("lvrm_flight_dumps")
        .set(static_cast<double>(tracer_->dumps_taken()));
  }
  m.gauge("lvrm_audit_events").set(static_cast<double>(telemetry_->audit().total()));
  m.gauge("lvrm_audit_overwritten")
      .set(static_cast<double>(telemetry_->audit().overwritten()));
  if (pool_) {
    // Pool gauges exist only in descriptor mode so classic exports stay
    // byte-identical (same rule as the per-shard breakdowns above).
    m.gauge("lvrm_frame_pool_in_flight")
        .set(static_cast<double>(pool_->in_flight()));
    m.gauge("lvrm_frame_pool_capacity")
        .set(static_cast<double>(pool_->capacity()));
  }
  if (replication_) {
    // Replication gauges exist only with §16 replication on (same
    // byte-identity rule as the pool gauges above).
    m.gauge("lvrm_spray_active_flows")
        .set(static_cast<double>(spray_active_flows()));
    m.gauge("lvrm_seq_held_frames")
        .set(static_cast<double>(seq_held_frames()));
  }
  if (fabric_) {
    // §17 fabric gauges exist only with the MPMC fabric on (same
    // byte-identity rule as the replication gauges above). Reclaimed
    // headroom = what the SPSC mesh would have reserved minus what the
    // fabric actually reserves — the ShmArena audit the satellite asks for.
    m.gauge("lvrm_fabric_rings")
        .set(static_cast<double>(fabric_ring_count()));
    m.gauge("lvrm_mesh_rings").set(static_cast<double>(mesh_ring_count()));
    const std::size_t mesh_b = mesh_ring_bytes();
    const std::size_t fab_b = fabric_ring_bytes();
    m.gauge("lvrm_fabric_reclaimed_bytes")
        .set(static_cast<double>(mesh_b > fab_b ? mesh_b - fab_b : 0));
    if (stealing_) {
      m.gauge("lvrm_tx_steals").set(static_cast<double>(tx_steals_));
      m.gauge("lvrm_tx_steal_frames")
          .set(static_cast<double>(tx_steal_frames_));
      m.gauge("lvrm_vri_steals").set(static_cast<double>(vri_steals_));
      m.gauge("lvrm_vri_steal_frames")
          .set(static_cast<double>(vri_steal_frames_));
    }
  }

  for (const auto& vrp : vrs_) {
    const VrState& vr = *vrp;
    const std::string l = "vr=\"" + std::to_string(vr.id) + "\"";
    m.gauge("lvrm_active_vris", l)
        .set(static_cast<double>(vr.active_order.size()));
    m.gauge("lvrm_arrival_rate_fps", l).set(arrival_rate_estimate(vr.id));
    m.gauge("lvrm_service_rate_fps", l).set(measured_service_rate(vr));
    m.gauge("lvrm_capacity_fps", l)
        .set(allocator_->capacity_fps(alloc_view(vr)));
    m.gauge("lvrm_frames_in", l).set(static_cast<double>(vr.frames_in));
    m.gauge("lvrm_forwarded", l).set(static_cast<double>(vr.forwarded));
    m.gauge("lvrm_data_queue_drops", l)
        .set(static_cast<double>(vr.data_drops));
    m.gauge("lvrm_shed_drops", l).set(static_cast<double>(vr.shed_drops));
    const DispatchStats stats = vr.dispatch_stats();
    m.gauge("lvrm_dispatch_decisions", l)
        .set(static_cast<double>(stats.decisions));
    m.gauge("lvrm_flow_probes", l)
        .set(static_cast<double>(stats.flow_probes));
    m.gauge("lvrm_flow_hits", l).set(static_cast<double>(stats.flow_hits));
    std::size_t depth = 0;
    for (int idx : vr.active_order)
      depth += vr.slots[static_cast<std::size_t>(idx)]->data_in->size();
    m.gauge("lvrm_data_queue_depth", l).set(static_cast<double>(depth));
    if (config_.flow_table_v2) {
      // Flow-table gauges exist only with the v2 table on (same
      // byte-identity rule as the ladder gauges below). Entries and slots
      // are summed across the VR's per-shard dispatchers.
      std::size_t entries = 0, slots = 0;
      for (const auto& d : vr.dispatchers) {
        entries += d->flow_entries();
        slots += d->flow_slots();
      }
      m.gauge("lvrm_flowtable_entries", l).set(static_cast<double>(entries));
      m.gauge("lvrm_flowtable_occupancy", l)
          .set(slots == 0 ? 0.0
                          : static_cast<double>(entries) /
                                static_cast<double>(slots));
    }
    if (config_.overload_control.enabled) {
      // Ladder gauges exist only with the ladder on, so defaults-off
      // exports stay byte-identical (same rule as the pool gauges).
      m.gauge("lvrm_overload_level", l)
          .set(static_cast<double>(static_cast<int>(vr.level)));
      m.gauge("lvrm_overload_sample_rate", l).set(vr.sample_rate);
      m.gauge("lvrm_offered_estimate", l).set(vr.offered_estimate);
      m.gauge("lvrm_sampled_shed", l)
          .set(static_cast<double>(vr.sampled_shed));
      m.gauge("lvrm_admission_rejected", l)
          .set(static_cast<double>(vr.admission_rejected));
    }
  }
}

bool LvrmSystem::export_telemetry(const std::string& prefix) {
  if (!telemetry_) return false;
  const Nanos now = sim_.now();
  for (auto& vrp : vrs_) close_shed_episode(*vrp, now);
  publish_gauges();
  return telemetry_->export_files(prefix, now,
                                  tracer_ ? &tracer_->spans() : nullptr);
}

}  // namespace lvrm
