// vri.hpp — hosted virtual router implementations (Secs 3.7/3.8).
//
// LVRM hosts "different implementations of VRs, provided that we allow
// minimal changes to the interfaces": a VR implementation only needs to
// consume frames from its data queue and emit them with an output interface
// chosen. Two implementations ship, as in the thesis:
//   * CppVr — "a simple data forwarding program written in C++": a longest-
//     prefix-match route table loaded from a map file; the lightweight
//     option that "eliminates the internal processing overhead in Click".
//   * ClickVr — a forwarding configuration run on the Click-style modular
//     router in src/click: the frame traverses Paint -> Strip ->
//     CheckIPHeader -> GetIPAddress -> LookupIPRoute -> EtherEncap -> ToHost
//     for real, byte-level, per frame.
//
// Each VRI owns a private instance (clone()) initialised from the same
// configuration, mirroring "VRIs that belong to the same VR are expected to
// share the same set of routing policies".
#pragma once

#include <memory>
#include <string>

#include "click/router.hpp"
#include "common/units.hpp"
#include "lvrm/types.hpp"
#include "net/flow.hpp"
#include "net/frame.hpp"
#include "net/state_record.hpp"
#include "route/route_table.hpp"
#include "route/route_update.hpp"

namespace lvrm {

class VirtualRouter {
 public:
  virtual ~VirtualRouter() = default;

  virtual VrKind kind() const = 0;

  /// Processes one frame: routes it (sets frame.output_if) or drops it
  /// (returns false). Runs the real forwarding logic.
  virtual bool process(net::FrameMeta& frame) = 0;

  /// CPU cost the simulator charges per processed frame (calibrated per
  /// implementation; excludes any experiment-added dummy load).
  virtual Nanos process_cost(const net::FrameMeta& frame) const = 0;

  /// Extra one-way latency inherent to the implementation's internal
  /// pipeline (the Click VR's internal Queue element; Fig 4.6).
  virtual Nanos pipeline_latency() const { return 0; }

  /// Applies a dynamic route add/withdraw (Sec 3.7: VRIs support "both
  /// static and dynamic routes without affecting the design of LVRM").
  /// Returns false when the implementation cannot apply it.
  virtual bool apply_route_update(const route::RouteUpdate& update) = 0;

  /// Fresh instance with the same configuration, for a new VRI.
  virtual std::unique_ptr<VirtualRouter> clone() const = 0;

  // --- stateful-VR hooks (DESIGN.md §16, docs/VR_AUTHORING.md) ----------
  // Stateless forwarders keep the no-op defaults. A stateful VR overrides
  // all five: it queues a StateDelta for every per-flow state *change* it
  // makes, LVRM drains the queue with take_delta() after each processed
  // frame and relays the records to sibling VRIs, and apply_delta()
  // installs a relayed record into a sibling's tables. export_flow_state()
  // snapshots one flow's current state for the spray-activation handshake.

  /// True when this VR keeps per-flow state that must be replicated for
  /// sibling VRIs to process the flow's frames correctly.
  virtual bool stateful() const { return false; }

  /// Pops the oldest pending state delta. Returns false when none remain.
  virtual bool take_delta(net::StateDelta& /*out*/) { return false; }

  /// Installs a state record relayed from a sibling VRI. Returns false when
  /// the record kind does not belong to this VR or is stale.
  virtual bool apply_delta(const net::StateDelta& /*delta*/) { return false; }

  /// Snapshots the current state of one flow (spray handshake seeding).
  /// Returns false when the VR has no state for the flow.
  virtual bool export_flow_state(const net::FiveTuple& /*flow*/,
                                 net::StateDelta& /*out*/) const {
    return false;
  }
};

/// Minimal C++ forwarder: LPM route table from a map file.
class CppVr final : public VirtualRouter {
 public:
  /// `route_map` is in parse_route_map() format. Throws on parse errors.
  explicit CppVr(std::string route_map);

  VrKind kind() const override { return VrKind::kCpp; }
  bool process(net::FrameMeta& frame) override;
  Nanos process_cost(const net::FrameMeta& frame) const override;
  bool apply_route_update(const route::RouteUpdate& update) override;
  std::unique_ptr<VirtualRouter> clone() const override;

  const route::RouteTable& table() const { return table_; }

 private:
  std::string route_map_;
  route::RouteTable table_;
};

/// Click Modular Router VR: builds a forwarding element graph from the same
/// route map and pushes real packets through it.
class ClickVr final : public VirtualRouter {
 public:
  /// Throws std::runtime_error when the generated Click config fails to
  /// parse (indicates a bug in config generation).
  explicit ClickVr(std::string route_map);

  /// Hosts a hand-written Click configuration instead of the generated
  /// forwarder (the Sec 3.8 premise: LVRM hosts different implementations
  /// of VRs with minimal interface requirements). The script must declare a
  /// `FromHost` named `in`; a `LookupIPRoute` named `rt` enables dynamic
  /// route updates. `route_map` still seeds the LPM fallback used when the
  /// graph is bypassed. Throws std::runtime_error on parse errors.
  ClickVr(std::string route_map, std::string click_script);

  VrKind kind() const override { return VrKind::kClick; }
  bool process(net::FrameMeta& frame) override;
  Nanos process_cost(const net::FrameMeta& frame) const override;
  Nanos pipeline_latency() const override;
  bool apply_route_update(const route::RouteUpdate& update) override;
  std::unique_ptr<VirtualRouter> clone() const override;

  /// When disabled, frames are routed through an equivalent LPM table
  /// instead of the element graph (large-scale sims; semantics identical,
  /// asserted by tests). The cost model is unchanged either way.
  void set_use_graph(bool on) { use_graph_ = on; }
  bool use_graph() const { return use_graph_; }

  const click::Router& router() const { return router_; }
  std::uint64_t graph_frames() const { return graph_frames_; }

  /// The generated Click configuration script (for inspection/examples).
  const std::string& config_script() const { return script_; }

 private:
  std::string route_map_;
  std::string script_;
  click::Router router_;
  route::RouteTable fallback_table_;  // mirror of the graph's route table
  bool use_graph_ = true;
  std::uint64_t graph_frames_ = 0;
  int last_output_ = -1;
};

std::unique_ptr<VirtualRouter> make_vr(VrKind kind, const std::string& route_map);

/// The route map used by the paper's testbed topology (Fig 4.1): the sender
/// subnet 10.1.0.0/16 behind interface 0, the receiver subnet 10.2.0.0/16
/// behind interface 1.
std::string default_route_map();

}  // namespace lvrm
