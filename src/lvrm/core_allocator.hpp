// core_allocator.hpp — the VR monitor's core allocation policies (Sec 3.2).
//
// Fig 3.2's "allocate()" runs on packet receipt at most once per second and,
// per VR, compares the EWMA arrival rate against thresholds:
//
//   if arrival <= threshold(service rate with 1 less VRI)  -> destroy a VRI
//   else if threshold(service rate) <= arrival             -> create a VRI
//
// The *fixed-threshold* variant uses a configured per-core capacity (the
// experiments use 60 Kfps, matching the 1/60 ms dummy load); the
// *dynamic-threshold* variant uses the per-VRI service rate measured by the
// LVRM adapters (Sec 3.6), so VRs with heavier per-frame processing get
// proportionally more cores (Exp 2e). A small hysteresis keeps the exact
// boundary (arrival == threshold) from flapping between create and destroy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lvrm/types.hpp"
#include "sim/topology.hpp"

namespace lvrm {

/// NUMA distance of a core pick relative to the anchoring dispatcher
/// shard's core (DESIGN.md §11). Recorded in the audit trail so "why did
/// this VRI land cross-socket?" is answerable from the trail alone.
enum class NumaTier : std::int8_t {
  kSameSocket = 0,   // shares the shard's socket (shared LLC)
  kSameMachine = 1,  // other socket, same machine (one QPI hop)
  kRemote = 2,       // different machine (interconnect)
  kNone = -1,        // no free core found / policy without an anchor
};

struct NumaPick {
  sim::CoreId core = sim::kNoCore;
  NumaTier tier = NumaTier::kNone;
};

/// Two-level sibling preference: the first free core on the anchor's
/// socket, else the anchor's machine, else any free core — ascending core
/// id within each tier, so with a single machine this is exactly the
/// paper's sibling-then-non-sibling order. `used[c]` marks occupied cores.
NumaPick pick_numa_core(const sim::CpuTopology& topo,
                        const std::vector<bool>& used, sim::CoreId anchor);

/// The tier `core` occupies relative to `anchor` (no freeness check).
NumaTier numa_tier_of(const sim::CpuTopology& topo, sim::CoreId anchor,
                      sim::CoreId core);

/// The allocator's per-VR view at decision time.
struct VrAllocView {
  int active_vris = 1;
  double arrival_rate_fps = 0.0;      // EWMA arrival rate estimate
  double service_rate_per_vri = 0.0;  // measured capacity; 0 = not yet known
};

enum class AllocDecision { kHold, kCreate, kDestroy };

class CoreAllocator {
 public:
  virtual ~CoreAllocator() = default;
  virtual AllocatorKind kind() const = 0;
  virtual AllocDecision decide(const VrAllocView& vr) const = 0;

  /// Aggregate capacity (frames/s) this allocator credits the VR with at its
  /// current VRI count — the threshold side of Fig 3.2's comparison. The
  /// overload-shedding and respawn-after-fault paths use it to ask "does the
  /// arrival rate exceed what is allocated?". 0 when not yet measurable.
  virtual double capacity_fps(const VrAllocView& vr) const = 0;
};

/// Fixed approach: the core set is chosen at VR start and never changes.
class FixedAllocator final : public CoreAllocator {
 public:
  AllocatorKind kind() const override { return AllocatorKind::kFixed; }
  AllocDecision decide(const VrAllocView&) const override {
    return AllocDecision::kHold;
  }
  double capacity_fps(const VrAllocView& vr) const override {
    // No configured threshold: the measured per-VRI service rate stands in.
    return vr.service_rate_per_vri * vr.active_vris;
  }
};

class DynamicFixedThresholdAllocator final : public CoreAllocator {
 public:
  DynamicFixedThresholdAllocator(double per_vri_capacity_fps,
                                 double destroy_hysteresis)
      : per_vri_fps_(per_vri_capacity_fps), hysteresis_(destroy_hysteresis) {}

  AllocatorKind kind() const override {
    return AllocatorKind::kDynamicFixedThreshold;
  }
  AllocDecision decide(const VrAllocView& vr) const override;
  double capacity_fps(const VrAllocView& vr) const override {
    return per_vri_fps_ * vr.active_vris;
  }

 private:
  double per_vri_fps_;
  double hysteresis_;
};

class DynamicDynamicThresholdAllocator final : public CoreAllocator {
 public:
  explicit DynamicDynamicThresholdAllocator(double destroy_hysteresis)
      : hysteresis_(destroy_hysteresis) {}

  AllocatorKind kind() const override {
    return AllocatorKind::kDynamicDynamicThreshold;
  }
  AllocDecision decide(const VrAllocView& vr) const override;
  double capacity_fps(const VrAllocView& vr) const override {
    return vr.service_rate_per_vri * vr.active_vris;
  }

 private:
  double hysteresis_;
};

std::unique_ptr<CoreAllocator> make_allocator(AllocatorKind kind,
                                              double per_vri_capacity_fps,
                                              double destroy_hysteresis);

}  // namespace lvrm
