// load_estimator.hpp — per-VRI load estimation (Sec 3.4, Fig 3.4).
//
// The VRI adapter updates its estimator every time it forwards a frame to
// its VRI ("Estimate: called upon receipt of a packet") using the paper's
// EWMA recurrence. Two variants, as in Fig 3.4:
//   * queue length — Average_Load over the incoming data queue's occupancy;
//   * arrival time — Average_Load over inter-arrival gaps, reported here as
//     an arrival *rate* so that "bigger = more loaded" holds for both
//     variants and JSQ can compare them uniformly.
#pragma once

#include <algorithm>
#include <memory>

#include "common/ewma.hpp"
#include "common/units.hpp"
#include "lvrm/types.hpp"

namespace lvrm {

class LoadEstimator {
 public:
  virtual ~LoadEstimator() = default;

  virtual EstimatorKind kind() const = 0;

  /// Fig 3.4 "estimate: called upon receipt of a packet": every VRI adapter
  /// observes its queue when LVRM receives a frame, *before* the dispatch
  /// decision. The queue-length variant samples here (a drained queue must
  /// read as lightly loaded even if nothing was dispatched to it lately);
  /// the arrival-time variant ignores it.
  virtual void on_packet_observed(std::size_t queue_len, Nanos now) = 0;

  /// Called on the one VRI the frame was dispatched to, with the occupancy
  /// after the enqueue. The arrival-time variant samples its inter-arrival
  /// gap here.
  virtual void on_dispatch(std::size_t queue_len, Nanos now) = 0;

  /// Fig 3.3 "get estimate": current Average_Load; bigger = more loaded.
  virtual double load() const = 0;

  /// Time-aware estimate used at dispatch. Defaults to load(); the
  /// arrival-time variant overrides it so a VRI that stopped receiving does
  /// not keep a stale high rate forever (which would lock it out of JSQ).
  virtual double load_at(Nanos /*now*/) const { return load(); }

  virtual void reset() = 0;
};

class QueueLengthEstimator final : public LoadEstimator {
 public:
  explicit QueueLengthEstimator(double weight) : ewma_(weight) {}
  EstimatorKind kind() const override { return EstimatorKind::kQueueLength; }
  void on_packet_observed(std::size_t queue_len, Nanos) override {
    ewma_.update(static_cast<double>(queue_len));
  }
  void on_dispatch(std::size_t, Nanos) override {}
  double load() const override { return ewma_.valid() ? ewma_.value() : 0.0; }
  void reset() override { ewma_.reset(); }

 private:
  PaperEwma ewma_;
};

class ArrivalTimeEstimator final : public LoadEstimator {
 public:
  explicit ArrivalTimeEstimator(double weight) : ewma_(weight) {}
  EstimatorKind kind() const override { return EstimatorKind::kArrivalTime; }
  void on_packet_observed(std::size_t, Nanos) override {}
  void on_dispatch(std::size_t, Nanos now) override {
    // Fig 3.4 "arrival time": only update once a previous timestamp exists.
    if (last_arrival_ >= 0) {
      const Nanos gap = now - last_arrival_;
      ewma_.update(static_cast<double>(gap > 0 ? gap : 1));
    }
    last_arrival_ = now;
  }
  double load() const override {
    if (!ewma_.valid() || ewma_.value() <= 0.0) return 0.0;
    return 1e9 / ewma_.value();  // frames/s; bigger = more loaded
  }
  double load_at(Nanos now) const override {
    if (!ewma_.valid() || ewma_.value() <= 0.0) return 0.0;
    // The true current gap is at least (now - last arrival): an idle VRI's
    // estimated rate decays instead of freezing at its last busy value.
    const double gap = std::max(
        ewma_.value(), static_cast<double>(now - last_arrival_));
    return 1e9 / (gap > 0.0 ? gap : 1.0);
  }
  void reset() override {
    ewma_.reset();
    last_arrival_ = -1;
  }

 private:
  PaperEwma ewma_;
  Nanos last_arrival_ = -1;
};

std::unique_ptr<LoadEstimator> make_estimator(EstimatorKind kind,
                                              double weight);

}  // namespace lvrm
