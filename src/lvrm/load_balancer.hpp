// load_balancer.hpp — dispatching frames across a VR's VRIs (Sec 3.3).
//
// The VRI monitor picks a VRI for every incoming frame. Fig 3.3's three
// schemes ship — join-the-shortest-queue (by the load estimator's
// Average_Load), round-robin, and uniform random — and each can run
// frame-based or flow-based: the flow-based wrapper consults the
// connection-tracking FlowTable first and only falls through to the inner
// scheme for a flow's first frame, whose chosen VRI is then pinned
// ("VRI of added entry <- JSQ()/Rnd()/RR()").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "lvrm/types.hpp"
#include "net/flow.hpp"
#include "net/flow_v2.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"

namespace lvrm {

/// What a balancer sees of each candidate VRI.
struct VriView {
  int index = -1;        // VRI slot index within the VR
  double load = 0.0;     // estimator's Average_Load (bigger = more loaded)
  bool suspect = false;  // health monitor: inside the fail-slow grace window
};

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual BalancerKind kind() const = 0;

  /// Picks among `vris` (non-empty, all valid/active). Returns the chosen
  /// element's `index`.
  virtual int pick(std::span<const VriView> vris) = 0;

  /// Dispatch-decision CPU cost on the LVRM core for `n` candidate VRIs.
  virtual Nanos decision_cost(std::size_t n) const = 0;
};

class JsqBalancer final : public LoadBalancer {
 public:
  BalancerKind kind() const override {
    return BalancerKind::kJoinShortestQueue;
  }
  int pick(std::span<const VriView> vris) override;
  Nanos decision_cost(std::size_t n) const override;
};

class RoundRobinBalancer final : public LoadBalancer {
 public:
  BalancerKind kind() const override { return BalancerKind::kRoundRobin; }
  int pick(std::span<const VriView> vris) override;
  Nanos decision_cost(std::size_t n) const override;

 private:
  std::size_t cursor_ = 0;
};

class RandomBalancer final : public LoadBalancer {
 public:
  explicit RandomBalancer(std::uint64_t seed) : rng_(seed) {}
  BalancerKind kind() const override { return BalancerKind::kRandom; }
  int pick(std::span<const VriView> vris) override;
  Nanos decision_cost(std::size_t n) const override;

 private:
  Rng rng_;
};

std::unique_ptr<LoadBalancer> make_balancer(BalancerKind kind,
                                            std::uint64_t seed);

/// Snapshot of one Dispatcher's counters. With a sharded dispatch plane
/// (DESIGN.md §11) every shard runs its own Dispatcher per VR; summing the
/// per-shard stats recovers the per-VR totals the gauges report.
struct DispatchStats {
  std::uint64_t decisions = 0;
  std::uint64_t flow_probes = 0;
  std::uint64_t flow_hits = 0;

  DispatchStats& operator+=(const DispatchStats& o) {
    decisions += o.decisions;
    flow_probes += o.flow_probes;
    flow_hits += o.flow_hits;
    return *this;
  }
};

/// Flow-aware dispatch wrapper implementing Fig 3.3's "balance(buffer)".
/// In frame mode it simply delegates; in flow mode it tracks 5-tuples.
class Dispatcher {
 public:
  /// `flow_table_v2` selects the million-flow FlowTableV2 (DESIGN.md §14)
  /// over the classic linear-probing table; `flow_capacity` is the initial
  /// capacity hint of whichever table is built. Defaults reproduce the
  /// historical dispatcher byte for byte.
  Dispatcher(std::unique_ptr<LoadBalancer> inner, BalancerGranularity gran,
             Nanos flow_idle_timeout = sec(30), bool flow_table_v2 = false,
             std::size_t flow_capacity = 4096);

  /// Chooses a VRI for `frame`. `vris` lists the active candidates with
  /// their current loads.
  int dispatch(const net::FrameMeta& frame, std::span<const VriView> vris,
               Nanos now);

  /// Batch variant: decides for every frame of a drained burst in one pass,
  /// writing each frame's `dispatch_vri`, and returns the summed decision
  /// cost. Takes pointers so a mixed burst can be regrouped per VR without
  /// moving frames. In flow mode the burst is sorted (by index, frames stay
  /// in place) so frames of the same 5-tuple are adjacent and collapse to
  /// ONE flow-table probe + timestamp refresh — at line rate a burst is
  /// usually dominated by a handful of hot flows. Inner picks still happen
  /// once per distinct flow (or per frame in frame mode), so RR/random
  /// distributions and JSQ tie-breaking are unchanged; only redundant
  /// probes are elided.
  Nanos dispatch_batch(std::span<net::FrameMeta* const> frames,
                       std::span<const VriView> vris, Nanos now);

  /// CPU cost of the decision just taken (includes flow-table work when in
  /// flow mode; the thesis charges a times() timestamp update per lookup).
  Nanos decision_cost(std::size_t n_vris, bool flow_hit) const;

  /// Forgets pinned flows of a destroyed VRI; returns how many flows were
  /// unpinned (0 in frame mode, where nothing is tracked).
  std::size_t on_vri_destroyed(int vri);

  /// Pool-state generation, bumped by the owner whenever the candidate set
  /// could have changed health (a VRI activated/deactivated/drained/crashed,
  /// or a fail-slow suspicion flipped). While the generation is unchanged
  /// and the last scan found no suspect, healthy_pool() skips rescanning —
  /// before this cache, flow-pinned traffic paid a full candidate scan per
  /// frame even when nothing had changed for seconds. Generation 0 (the
  /// default) disables the cache, preserving the standalone-Dispatcher
  /// contract that views may change arbitrarily between calls.
  void set_pool_generation(std::uint64_t gen) { pool_generation_ = gen; }
  std::uint64_t pool_generation() const { return pool_generation_; }
  /// Full candidate scans performed (the regression surface for the cache).
  std::uint64_t pool_scans() const { return pool_scans_; }

  BalancerGranularity granularity() const { return granularity_; }
  const LoadBalancer& inner() const { return *inner_; }
  bool last_was_flow_hit() const { return last_flow_hit_; }
  const net::FlowTable& flow_table() const { return flows_; }
  /// Non-null iff this dispatcher was built with flow_table_v2.
  const net::FlowTableV2* flow_table_v2() const { return flows_v2_.get(); }

  /// Tracked flow entries / slot capacity of whichever table is active
  /// (feeds the lvrm_flowtable_occupancy gauge).
  std::size_t flow_entries() const {
    return flows_v2_ ? flows_v2_->size() : flows_.size();
  }
  std::size_t flow_slots() const {
    return flows_v2_ ? flows_v2_->capacity() : flows_.bucket_count();
  }

  /// Probe-length histogram: when valid, every flow-table probe records the
  /// buckets it touched. Wired by LvrmSystem only when telemetry AND
  /// flow_table_v2 are on (the metrics-off export must stay byte-identical).
  void set_probe_histogram(obs::LogHistogram h) { probe_hist_ = h; }

  /// Resize observer, forwarded to whichever table is active (feeds the
  /// flowtable_resize audit events).
  void set_flow_resize_hook(net::FlowResizeHook hook) {
    if (flows_v2_) {
      flows_v2_->set_resize_hook(std::move(hook));
    } else {
      flows_.set_resize_hook(std::move(hook));
    }
  }

  // Telemetry accessors (plain counters; read at snapshot time only).
  /// Frames dispatched through either path.
  std::uint64_t decisions() const { return decisions_; }
  /// Flow-table probes (flow mode; one per frame classic, one per run in a
  /// batch) and the subset that hit a still-valid pinned VRI.
  std::uint64_t flow_probes() const { return flow_probes_; }
  std::uint64_t flow_hits() const { return flow_hits_; }
  DispatchStats stats() const {
    return DispatchStats{decisions_, flow_probes_, flow_hits_};
  }

 private:
  /// Suspect-aware candidate filtering shared by both dispatch paths: while
  /// any VRI is under fail-slow suspicion, steer to healthy siblings (fall
  /// back to the full set if none remain).
  std::span<const VriView> healthy_pool(std::span<const VriView> vris);

  /// Table-selection seam: both paths preserve the classic table's exact
  /// lookup/insert/expiry semantics, so dispatch decisions are identical
  /// whichever is active. The v2 probe also records its probe length and
  /// runs the GC wheel's bounded background expiry.
  std::optional<int> flow_lookup(const net::FiveTuple& t, Nanos now);
  void flow_insert(const net::FiveTuple& t, int vri, Nanos now);

  std::unique_ptr<LoadBalancer> inner_;
  BalancerGranularity granularity_;
  net::FlowTable flows_;
  std::unique_ptr<net::FlowTableV2> flows_v2_;
  obs::LogHistogram probe_hist_;
  bool last_flow_hit_ = false;
  std::uint64_t decisions_ = 0;
  std::uint64_t flow_probes_ = 0;
  std::uint64_t flow_hits_ = 0;
  std::uint64_t pool_generation_ = 0;   // 0 = cache disabled
  std::uint64_t pool_cached_gen_ = 0;   // generation of the last scan
  bool pool_cached_suspect_ = false;    // last scan's verdict
  std::uint64_t pool_scans_ = 0;
  // Reused across bursts so batch dispatch allocates nothing after warm-up.
  std::vector<VriView> pool_scratch_;
  std::vector<std::uint32_t> order_scratch_;
};

}  // namespace lvrm
