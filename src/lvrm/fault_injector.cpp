#include "lvrm/fault_injector.hpp"

#include "lvrm/system.hpp"

namespace lvrm {

void FaultInjector::inject(const FaultSpec& spec) {
  apply(spec);
  if (spec.duration > 0 && spec.kind != FaultKind::kCrash)
    sim_.after(spec.duration, [this, spec] { clear(spec); });
}

void FaultInjector::schedule(const FaultSpec& spec) {
  sim_.at(spec.at, [this, spec] { inject(spec); });
}

void FaultInjector::apply(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kCrash:
      system_.inject_vri_crash(spec.vr, spec.vri);
      break;
    case FaultKind::kHang:
      system_.inject_vri_hang(spec.vr, spec.vri);
      break;
    case FaultKind::kSlowdown:
      system_.inject_vri_slowdown(spec.vr, spec.vri, spec.magnitude);
      break;
    case FaultKind::kControlLoss:
      system_.inject_control_loss(spec.vr, spec.vri, spec.magnitude);
      break;
  }
  log_.push_back(spec);
}

void FaultInjector::clear(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kCrash:
      break;  // death is permanent
    case FaultKind::kHang:
      system_.clear_vri_hang(spec.vr, spec.vri);
      break;
    case FaultKind::kSlowdown:
      system_.inject_vri_slowdown(spec.vr, spec.vri, 1.0);
      break;
    case FaultKind::kControlLoss:
      system_.inject_control_loss(spec.vr, spec.vri, 0.0);
      break;
  }
}

}  // namespace lvrm
