#include "lvrm/fault_injector.hpp"

#include "lvrm/system.hpp"

namespace lvrm {

void FaultInjector::inject(const FaultSpec& spec) {
  apply(spec);
  // Crashes are permanent; an overload burst limits itself (the duration is
  // consumed by the burst's own emission schedule) — no clearing for either.
  if (spec.duration > 0 && spec.kind != FaultKind::kCrash &&
      spec.kind != FaultKind::kOverloadBurst)
    sim_.after(spec.duration, [this, spec] { clear(spec); });
}

void FaultInjector::schedule(const FaultSpec& spec) {
  sim_.at(spec.at, [this, spec] { inject(spec); });
}

void FaultInjector::apply(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kCrash:
      system_.inject_vri_crash(spec.vr, spec.vri);
      break;
    case FaultKind::kHang:
      system_.inject_vri_hang(spec.vr, spec.vri);
      break;
    case FaultKind::kSlowdown:
      system_.inject_vri_slowdown(spec.vr, spec.vri, spec.magnitude);
      break;
    case FaultKind::kControlLoss:
      system_.inject_control_loss(spec.vr, spec.vri, spec.magnitude);
      break;
    case FaultKind::kOverloadBurst:
      // `magnitude` is the burst rate in frames/s aimed at the VR's ingress
      // (spec.vri is irrelevant: overload hits the VR, not one instance).
      system_.inject_overload_burst(spec.vr, spec.magnitude, spec.duration);
      break;
  }
  log_.push_back(spec);
}

void FaultInjector::clear(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kCrash:
      break;  // death is permanent
    case FaultKind::kHang:
      system_.clear_vri_hang(spec.vr, spec.vri);
      break;
    case FaultKind::kSlowdown:
      system_.inject_vri_slowdown(spec.vr, spec.vri, 1.0);
      break;
    case FaultKind::kControlLoss:
      system_.inject_control_loss(spec.vr, spec.vri, 0.0);
      break;
    case FaultKind::kOverloadBurst:
      break;  // self-limiting: the emission schedule stops at `duration`
  }
}

}  // namespace lvrm
