#include "lvrm/health_monitor.hpp"

#include <algorithm>

namespace lvrm {

namespace {

/// Median of the siblings' known departure rates, excluding `self`.
/// 0 when fewer than one sibling has a measured rate.
double sibling_median(std::span<const VriProbe> probes, int self) {
  std::vector<double> rates;
  rates.reserve(probes.size());
  for (const VriProbe& p : probes)
    if (p.vri != self && p.departure_rate_fps > 0.0)
      rates.push_back(p.departure_rate_fps);
  if (rates.empty()) return 0.0;
  const std::size_t mid = rates.size() / 2;
  std::nth_element(rates.begin(), rates.begin() + static_cast<long>(mid),
                   rates.end());
  double median = rates[mid];
  if (rates.size() % 2 == 0) {
    // Lower-middle element: everything before `mid` is <= rates[mid].
    const double lower =
        *std::max_element(rates.begin(), rates.begin() + static_cast<long>(mid));
    median = (median + lower) / 2.0;
  }
  return median;
}

}  // namespace

std::vector<HealthVerdict> HealthMonitor::probe(
    int vr, std::span<const VriProbe> probes, Nanos now) {
  std::vector<HealthVerdict> verdicts;
  for (const VriProbe& p : probes) {
    Record& rec = records_[key(vr, p.vri)];
    if (!rec.seen) {
      rec.seen = true;
      rec.last_progress = p.progress;
      rec.last_change = now;
      continue;  // first sample of this incarnation: baseline only
    }

    // Liveness first: a dead process needs no timeout, the probe itself
    // (kill(pid, 0) in a real deployment) already failed.
    if (!p.reachable) {
      ++dead_;
      verdicts.push_back({p.vri, VriHealth::kDead, now - rec.last_change});
      records_.erase(key(vr, p.vri));
      continue;
    }

    if (p.progress != rec.last_progress) {
      rec.last_progress = p.progress;
      rec.last_change = now;
    } else if (p.backlog > 0 &&
               now - rec.last_change >= config_.heartbeat_timeout) {
      // Alive but frozen with work pending: hung. An idle VRI (backlog 0)
      // legitimately makes no progress and is left alone.
      ++hung_;
      verdicts.push_back({p.vri, VriHealth::kHung, now - rec.last_change});
      records_.erase(key(vr, p.vri));
      continue;
    }

    // Service-rate watchdog: progressing, but slower than its siblings.
    const double median = sibling_median(probes, p.vri);
    if (p.departure_rate_fps > 0.0 && median > 0.0 &&
        p.departure_rate_fps < config_.fail_slow_fraction * median) {
      if (++rec.slow_strikes >= config_.fail_slow_grace) {
        ++fail_slow_;
        verdicts.push_back(
            {p.vri, VriHealth::kFailSlow, now - rec.last_change});
        records_.erase(key(vr, p.vri));
      }
    } else {
      rec.slow_strikes = 0;
    }
  }
  return verdicts;
}

void HealthMonitor::forget(int vr, int vri) { records_.erase(key(vr, vri)); }

bool HealthMonitor::is_suspect(int vr, int vri) const {
  const auto it = records_.find(key(vr, vri));
  return it != records_.end() && it->second.slow_strikes > 0;
}

}  // namespace lvrm
