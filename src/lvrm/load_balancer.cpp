#include "lvrm/load_balancer.hpp"

#include "sim/costs.hpp"

namespace lvrm {

namespace costs = sim::costs;

// --- JSQ (Fig 3.3 "JSQ") -------------------------------------------------------

int JsqBalancer::pick(std::span<const VriView> vris) {
  // "for each VRI in this VR: remember the VRI with the current shortest
  // queue load". First-wins on ties, matching the strict '<' in Fig 3.3.
  const VriView* best = &vris[0];
  for (const VriView& v : vris.subspan(1))
    if (v.load < best->load) best = &v;
  return best->index;
}

Nanos JsqBalancer::decision_cost(std::size_t n) const {
  return static_cast<Nanos>(n) * costs::kJsqPerVri;
}

// --- Round-robin -----------------------------------------------------------------

int RoundRobinBalancer::pick(std::span<const VriView> vris) {
  // "return the next and valid VRI".
  cursor_ = (cursor_ + 1) % vris.size();
  return vris[cursor_].index;
}

Nanos RoundRobinBalancer::decision_cost(std::size_t) const {
  return costs::kRoundRobinCost;
}

// --- Random ----------------------------------------------------------------------

int RandomBalancer::pick(std::span<const VriView> vris) {
  return vris[rng_.uniform(vris.size())].index;
}

Nanos RandomBalancer::decision_cost(std::size_t) const {
  return costs::kRandomCost;
}

std::unique_ptr<LoadBalancer> make_balancer(BalancerKind kind,
                                            std::uint64_t seed) {
  switch (kind) {
    case BalancerKind::kJoinShortestQueue:
      return std::make_unique<JsqBalancer>();
    case BalancerKind::kRoundRobin:
      return std::make_unique<RoundRobinBalancer>();
    case BalancerKind::kRandom:
      return std::make_unique<RandomBalancer>(seed);
  }
  return nullptr;
}

// --- Dispatcher (Fig 3.3 "balance") -------------------------------------------------

Dispatcher::Dispatcher(std::unique_ptr<LoadBalancer> inner,
                       BalancerGranularity gran, Nanos flow_idle_timeout)
    : inner_(std::move(inner)),
      granularity_(gran),
      flows_(4096, flow_idle_timeout) {}

int Dispatcher::dispatch(const net::FrameMeta& frame,
                         std::span<const VriView> vris, Nanos now) {
  last_flow_hit_ = false;

  // Health layer: while the watchdog has a VRI under fail-slow suspicion,
  // steer new work to healthy siblings (the suspect keeps draining its
  // queue, which is exactly what either clears or confirms the suspicion).
  // With no healthy alternative the full set is used unchanged.
  std::vector<VriView> healthy;
  std::span<const VriView> pool = vris;
  bool any_suspect = false;
  for (const VriView& v : vris) any_suspect |= v.suspect;
  if (any_suspect) {
    for (const VriView& v : vris)
      if (!v.suspect) healthy.push_back(v);
    if (!healthy.empty()) pool = healthy;
  }

  if (granularity_ == BalancerGranularity::kFlow) {
    const auto tuple = net::FiveTuple::from_frame(frame);
    if (const auto pinned = flows_.lookup(tuple, now)) {
      // "if the entry is found and the VRI of the entry is valid".
      for (const VriView& v : pool) {
        if (v.index == *pinned) {
          last_flow_hit_ = true;
          return *pinned;
        }
      }
      // Pinned VRI no longer valid (destroyed or suspect): re-balance.
    }
    const int chosen = inner_->pick(pool);
    flows_.insert(tuple, chosen, now);  // "VRI of added entry <- ..."
    return chosen;
  }
  return inner_->pick(pool);
}

Nanos Dispatcher::decision_cost(std::size_t n_vris, bool flow_hit) const {
  Nanos cost = 0;
  if (granularity_ == BalancerGranularity::kFlow) {
    // Hash-table probe plus the times() timestamp refresh per frame.
    cost += costs::kFlowTableLookup + costs::kFlowTimestampSyscall;
    if (flow_hit) return cost;  // pinned: inner scheme skipped
  }
  return cost + inner_->decision_cost(n_vris);
}

void Dispatcher::on_vri_destroyed(int vri) { flows_.evict_vri(vri); }

}  // namespace lvrm
