#include "lvrm/load_balancer.hpp"

#include <algorithm>
#include <tuple>

#include "common/log.hpp"
#include "sim/costs.hpp"

namespace lvrm {

namespace costs = sim::costs;

// --- JSQ (Fig 3.3 "JSQ") -------------------------------------------------------

int JsqBalancer::pick(std::span<const VriView> vris) {
  // "for each VRI in this VR: remember the VRI with the current shortest
  // queue load". First-wins on ties, matching the strict '<' in Fig 3.3.
  const VriView* best = &vris[0];
  for (const VriView& v : vris.subspan(1))
    if (v.load < best->load) best = &v;
  return best->index;
}

Nanos JsqBalancer::decision_cost(std::size_t n) const {
  return static_cast<Nanos>(n) * costs::kJsqPerVri;
}

// --- Round-robin -----------------------------------------------------------------

int RoundRobinBalancer::pick(std::span<const VriView> vris) {
  // "return the next and valid VRI".
  cursor_ = (cursor_ + 1) % vris.size();
  return vris[cursor_].index;
}

Nanos RoundRobinBalancer::decision_cost(std::size_t) const {
  return costs::kRoundRobinCost;
}

// --- Random ----------------------------------------------------------------------

int RandomBalancer::pick(std::span<const VriView> vris) {
  return vris[rng_.uniform(vris.size())].index;
}

Nanos RandomBalancer::decision_cost(std::size_t) const {
  return costs::kRandomCost;
}

std::unique_ptr<LoadBalancer> make_balancer(BalancerKind kind,
                                            std::uint64_t seed) {
  switch (kind) {
    case BalancerKind::kJoinShortestQueue:
      return std::make_unique<JsqBalancer>();
    case BalancerKind::kRoundRobin:
      return std::make_unique<RoundRobinBalancer>();
    case BalancerKind::kRandom:
      return std::make_unique<RandomBalancer>(seed);
  }
  return nullptr;
}

// --- Dispatcher (Fig 3.3 "balance") -------------------------------------------------

Dispatcher::Dispatcher(std::unique_ptr<LoadBalancer> inner,
                       BalancerGranularity gran, Nanos flow_idle_timeout,
                       bool flow_table_v2, std::size_t flow_capacity)
    // With v2 selected the classic table stays constructed (the accessor
    // contract) but at its floor size — it tracks nothing.
    : inner_(std::move(inner)),
      granularity_(gran),
      flows_(flow_table_v2 ? 16 : flow_capacity, flow_idle_timeout) {
  if (flow_table_v2) {
    flows_v2_ = std::make_unique<net::FlowTableV2>(flow_capacity,
                                                   flow_idle_timeout);
  }
}

std::optional<int> Dispatcher::flow_lookup(const net::FiveTuple& t,
                                           Nanos now) {
  if (!flows_v2_) return flows_.lookup(t, now);
  // Bounded background work rides the probe: the GC wheel expires what the
  // elapsed wheel slots hold, and an in-flight resize migrates a bucket.
  flows_v2_->gc_tick(now);
  const auto r = flows_v2_->lookup(t, now);
  if (probe_hist_.valid()) probe_hist_.record(flows_v2_->last_probe_len());
  return r;
}

void Dispatcher::flow_insert(const net::FiveTuple& t, int vri, Nanos now) {
  if (flows_v2_) {
    flows_v2_->insert(t, vri, now);
  } else {
    flows_.insert(t, vri, now);
  }
}

std::span<const VriView> Dispatcher::healthy_pool(
    std::span<const VriView> vris) {
  // Health layer: while the watchdog has a VRI under fail-slow suspicion,
  // steer new work to healthy siblings (the suspect keeps draining its
  // queue, which is exactly what either clears or confirms the suspicion).
  // With no healthy alternative the full set is used unchanged.
  //
  // Generation cache: suspicion only changes when the owner bumps the pool
  // generation, so an unchanged generation whose last scan was clean needs
  // no rescan. When a suspect exists the pool is rebuilt every call — the
  // loads in `vris` are fresh per call and the filtered copy must be too.
  if (pool_generation_ != 0 && pool_generation_ == pool_cached_gen_ &&
      !pool_cached_suspect_)
    return vris;
  ++pool_scans_;
  bool any_suspect = false;
  for (const VriView& v : vris) any_suspect |= v.suspect;
  pool_cached_gen_ = pool_generation_;
  pool_cached_suspect_ = any_suspect;
  if (!any_suspect) return vris;
  pool_scratch_.clear();
  for (const VriView& v : vris)
    if (!v.suspect) pool_scratch_.push_back(v);
  return pool_scratch_.empty() ? vris
                               : std::span<const VriView>(pool_scratch_);
}

int Dispatcher::dispatch(const net::FrameMeta& frame,
                         std::span<const VriView> vris, Nanos now) {
  last_flow_hit_ = false;
  ++decisions_;
  // The healthy pool is only consulted when the inner scheme actually picks
  // — a pinned flow hit never needs it, so it is computed lazily below.

  if (granularity_ == BalancerGranularity::kFlow) {
    const auto tuple = net::FiveTuple::from_frame(frame);
    ++flow_probes_;
    if (const auto pinned = flow_lookup(tuple, now)) {
      // "if the entry is found and the VRI of the entry is valid". The pin
      // is validated against the FULL active set, not the healthy pool: a
      // suspect VRI only loses NEW flows — diverting a pinned flow while
      // its older frames still sit in the suspect's (slow) queue would
      // reorder it through a faster sibling. If the suspicion is confirmed,
      // the reset-free drain migrates queue and pins together (§13).
      for (const VriView& v : vris) {
        if (v.index == *pinned) {
          last_flow_hit_ = true;
          ++flow_hits_;
          return *pinned;
        }
      }
      // Pinned VRI no longer valid (destroyed): re-balance.
      LVRM_CLOG(kDispatch, kTrace)
          << "stale flow pin vri=" << *pinned << ", re-balancing";
    }
    const int chosen = inner_->pick(healthy_pool(vris));
    flow_insert(tuple, chosen, now);  // "VRI of added entry <- ..."
    return chosen;
  }
  return inner_->pick(healthy_pool(vris));
}

Nanos Dispatcher::dispatch_batch(std::span<net::FrameMeta* const> frames,
                                 std::span<const VriView> vris, Nanos now) {
  last_flow_hit_ = false;
  if (frames.empty()) return 0;
  decisions_ += frames.size();

  if (granularity_ != BalancerGranularity::kFlow) {
    // Frame mode has no per-flow state to amortize: one inner pick each,
    // exactly as the per-frame path would do.
    const std::span<const VriView> pool = healthy_pool(vris);
    Nanos cost = 0;
    for (net::FrameMeta* f : frames) {
      f->dispatch_vri = static_cast<std::int16_t>(inner_->pick(pool));
      cost += inner_->decision_cost(vris.size());
    }
    return cost;
  }
  // Flow mode computes the pool lazily: a burst that is all pinned hits —
  // the steady state of a flow-heavy workload — never filters at all.

  // Flow mode: order the burst by 5-tuple (stable via the original index)
  // so frames of one flow form a contiguous run, then probe the flow table
  // once per run. The frames themselves are not reordered — only the
  // decision pass walks in sorted order — so queue order is preserved.
  order_scratch_.clear();
  for (std::uint32_t i = 0; i < frames.size(); ++i) order_scratch_.push_back(i);
  auto key = [&frames](std::uint32_t i) {
    const net::FrameMeta& f = *frames[i];
    return std::make_tuple(f.src_ip, f.dst_ip, f.src_port, f.dst_port,
                           f.protocol);
  };
  std::sort(order_scratch_.begin(), order_scratch_.end(),
            [&key](std::uint32_t a, std::uint32_t b) {
              const auto ka = key(a), kb = key(b);
              return ka != kb ? ka < kb : a < b;
            });

  Nanos cost = 0;
  std::size_t i = 0;
  while (i < order_scratch_.size()) {
    const auto tuple =
        net::FiveTuple::from_frame(*frames[order_scratch_[i]]);
    std::size_t j = i + 1;
    while (j < order_scratch_.size() &&
           net::FiveTuple::from_frame(*frames[order_scratch_[j]]) == tuple)
      ++j;
    // One probe + times() refresh for the whole run.
    cost += costs::kFlowTableLookup + costs::kFlowTimestampSyscall;
    ++flow_probes_;
    int chosen = -1;
    if (const auto pinned = flow_lookup(tuple, now)) {
      // Full set, not the healthy pool: see dispatch() — suspect VRIs keep
      // their pinned flows to preserve per-flow FIFO order.
      for (const VriView& v : vris) {
        if (v.index == *pinned) {
          chosen = *pinned;
          last_flow_hit_ = true;
          ++flow_hits_;
          break;
        }
      }
    }
    if (chosen < 0) {
      chosen = inner_->pick(healthy_pool(vris));
      flow_insert(tuple, chosen, now);
      cost += inner_->decision_cost(vris.size());
    }
    for (std::size_t k = i; k < j; ++k)
      frames[order_scratch_[k]]->dispatch_vri =
          static_cast<std::int16_t>(chosen);
    i = j;
  }
  return cost;
}

Nanos Dispatcher::decision_cost(std::size_t n_vris, bool flow_hit) const {
  Nanos cost = 0;
  if (granularity_ == BalancerGranularity::kFlow) {
    // Hash-table probe plus the times() timestamp refresh per frame.
    cost += costs::kFlowTableLookup + costs::kFlowTimestampSyscall;
    if (flow_hit) return cost;  // pinned: inner scheme skipped
  }
  return cost + inner_->decision_cost(n_vris);
}

std::size_t Dispatcher::on_vri_destroyed(int vri) {
  LVRM_CLOG(kDispatch, kDebug) << "evicting pinned flows of vri=" << vri;
  // V2 walks the per-VRI intrusive list — O(flows on that VRI), which is
  // what keeps the §13 drain path flat as the table grows to millions.
  return flows_v2_ ? flows_v2_->evict_vri(vri) : flows_.evict_vri(vri);
}

}  // namespace lvrm
