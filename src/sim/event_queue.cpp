#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace lvrm::sim {

EventId EventQueue::push(Nanos at, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void EventQueue::cancel(EventId id) { callbacks_.erase(id); }

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && callbacks_.find(heap_.top().id) == callbacks_.end())
    heap_.pop();
}

Nanos EventQueue::next_time() {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  Fired fired{top.at, top.id, std::move(it->second)};
  callbacks_.erase(it);
  return fired;
}

}  // namespace lvrm::sim
