// poll_server.hpp — a pinned polling process serving prioritized queues.
//
// Both LVRM and every VRI are modelled as PollServers: a loop pinned to one
// core that repeatedly (1) finds the highest-priority non-empty input queue,
// (2) dequeues one item, (3) spends its service cost on the core, (4) hands
// the item to the input's sink. This mirrors the thesis' non-blocking poll
// loops: control queues are checked before data queues (Sec 2.1), and within
// a priority class inputs are scanned round-robin so e.g. the TX queues of
// many VRIs cannot be starved by a hot RX ring.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/core.hpp"
#include "sim/queue.hpp"
#include "sim/simulator.hpp"

namespace lvrm::sim {

template <typename T>
class PollServer {
 public:
  /// Cost of serving one item (may depend on the item, e.g. per-byte copy).
  /// Receives a mutable reference: servers that must *decide* something to
  /// know the cost (LVRM's dispatch step) record the decision in the item.
  using CostFn = std::function<Nanos(T&)>;
  /// Invoked when service of an item completes (at the completion time).
  using Sink = std::function<void(T&&)>;

  /// `pickup_latency` models the poll loop's discovery delay: when work
  /// arrives while the server is idle, one loop iteration over its sockets
  /// and queues passes before the item is noticed. Zero = immediate.
  PollServer(Simulator& sim, Core& core, OwnerId owner, std::string name = {},
             Nanos pickup_latency = 0)
      : sim_(sim),
        core_(&core),
        owner_(owner),
        name_(std::move(name)),
        pickup_latency_(pickup_latency) {}

  PollServer(const PollServer&) = delete;
  PollServer& operator=(const PollServer&) = delete;

  /// Registers an input queue. Lower `priority` is served first. The queue's
  /// observer is captured by this server. `batch` > 1 lets the server drain
  /// up to that many consecutive items from this input once selected (poll
  /// loops read NIC rings in bursts) before re-scanning priorities. Returns
  /// the input index.
  std::size_t add_input(BoundedQueue<T>& q, int priority, CostFn cost,
                        Sink sink, CostCategory category = CostCategory::kUser,
                        std::size_t batch = 1) {
    inputs_.push_back(Input{&q, priority, std::move(cost), std::move(sink),
                            category, batch < 1 ? 1 : batch});
    q.set_observer([this] {
      if (pickup_latency_ > 0 && !serving_) {
        sim_.after(pickup_latency_, [this] { maybe_serve(); });
      } else {
        maybe_serve();
      }
    });
    return inputs_.size() - 1;
  }

  /// Starts/stops the loop. A stopped server leaves queued items in place.
  void start() {
    running_ = true;
    maybe_serve();
  }
  void stop() { running_ = false; }
  bool running() const { return running_; }

  /// Moves the server to a different core (models kernel migration in the
  /// "default" affinity policy). A migration penalty is charged to the new
  /// core as system time.
  void migrate(Core& new_core, Nanos penalty) {
    core_ = &new_core;
    core_->charge(penalty, CostCategory::kSystem);
  }

  Core& core() const { return *core_; }
  OwnerId owner() const { return owner_; }
  const std::string& name() const { return name_; }
  std::uint64_t served() const { return served_; }
  bool busy() const { return serving_; }

  /// One-shot extra cost added to the next served item (used for e.g. a core
  /// allocation pass that preempts the LVRM loop).
  void add_oneshot_cost(Nanos cost) { oneshot_cost_ += cost; }

  /// Kicks the serve loop; harmless to call at any time.
  void maybe_serve() {
    if (!running_ || serving_) return;
    std::size_t idx = kNoInput;
    if (batch_remaining_ > 0 && current_input_ != kNoInput &&
        !inputs_[current_input_].queue->empty()) {
      idx = current_input_;
      --batch_remaining_;
    } else {
      idx = pick_input();
      current_input_ = idx;
      batch_remaining_ =
          idx == kNoInput ? 0 : inputs_[idx].batch - 1;
    }
    if (idx == kNoInput) return;
    Input& in = inputs_[idx];
    T item = in.queue->pop();
    Nanos cost = in.cost ? in.cost(item) : 0;
    cost += oneshot_cost_;
    oneshot_cost_ = 0;
    serving_ = true;
    // The callback owns the item; shared_ptr makes the lambda copyable for
    // std::function without requiring T to be copyable.
    auto boxed = std::make_shared<T>(std::move(item));
    Input* input = &in;
    core_->run(cost, in.category, owner_, [this, boxed, input] {
      serving_ = false;
      ++served_;
      if (input->sink) input->sink(std::move(*boxed));
      maybe_serve();
    });
  }

 private:
  struct Input {
    BoundedQueue<T>* queue;
    int priority;
    CostFn cost;
    Sink sink;
    CostCategory category;
    std::size_t batch = 1;
  };

  static constexpr std::size_t kNoInput =
      std::numeric_limits<std::size_t>::max();

  /// Highest-priority non-empty input, round-robin within a priority class.
  std::size_t pick_input() {
    std::size_t best = kNoInput;
    int best_prio = std::numeric_limits<int>::max();
    const std::size_t n = inputs_.size();
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = (rr_cursor_ + step) % n;
      const Input& in = inputs_[i];
      if (in.queue->empty()) continue;
      if (in.priority < best_prio) {
        best_prio = in.priority;
        best = i;
      }
    }
    if (best != kNoInput) rr_cursor_ = (best + 1) % n;
    return best;
  }

  Simulator& sim_;
  Core* core_;
  OwnerId owner_;
  std::string name_;
  std::vector<Input> inputs_;
  std::size_t rr_cursor_ = 0;
  Nanos pickup_latency_ = 0;
  std::size_t batch_remaining_ = 0;
  std::size_t current_input_ = kNoInput;
  bool running_ = false;
  bool serving_ = false;
  Nanos oneshot_cost_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace lvrm::sim
