// poll_server.hpp — a pinned polling process serving prioritized queues.
//
// Both LVRM and every VRI are modelled as PollServers: a loop pinned to one
// core that repeatedly (1) finds the highest-priority non-empty input queue,
// (2) dequeues one item, (3) spends its service cost on the core, (4) hands
// the item to the input's sink. This mirrors the thesis' non-blocking poll
// loops: control queues are checked before data queues (Sec 2.1), and within
// a priority class inputs are scanned round-robin so e.g. the TX queues of
// many VRIs cannot be starved by a hot RX ring.
//
// Hot-path memory model (DESIGN.md §9): serving an item performs no heap
// allocation. The in-service item lives in a member slot and the completion
// callback captures only `this` (fits std::function's small-buffer storage),
// so the simulated host overhead of a frame is not polluted by allocator
// noise. Input selection consults per-priority non-empty hints instead of
// scanning every queue: a control (priority 0) input with pending work is
// found without ever touching the data queues.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/core.hpp"
#include "sim/queue.hpp"
#include "sim/simulator.hpp"

namespace lvrm::sim {

template <typename T>
class PollServer {
 public:
  /// Cost of serving one item (may depend on the item, e.g. per-byte copy).
  /// Receives a mutable reference: servers that must *decide* something to
  /// know the cost (LVRM's dispatch step) record the decision in the item.
  using CostFn = std::function<Nanos(T&)>;
  /// Invoked when service of an item completes (at the completion time).
  using Sink = std::function<void(T&&)>;
  /// Cost of serving a whole coalesced batch in one pass. Receives the batch
  /// mutably, like CostFn; may be cheaper than the sum of per-item costs
  /// (amortized lookups, one syscall for the burst).
  using BatchCostFn = std::function<Nanos(std::span<T>)>;
  /// Gate predicate: an input whose gate returns false is skipped by the
  /// scheduler as if empty, but its non-empty hint is NOT cleared — the
  /// work is still there, just temporarily owned by someone else (a steal
  /// in flight, DESIGN.md §17). Call kick() after the gate reopens.
  using GateFn = std::function<bool()>;
  /// Idle hook: invoked when the scan finds no serviceable input. Return
  /// true ONLY if the hook produced new work (e.g. stole a burst into one
  /// of this server's queues) — the scan then runs again. Returning true
  /// without producing work livelocks the loop.
  using IdleHook = std::function<bool()>;

  /// `pickup_latency` models the poll loop's discovery delay: when work
  /// arrives while the server is idle, one loop iteration over its sockets
  /// and queues passes before the item is noticed. Zero = immediate.
  PollServer(Simulator& sim, Core& core, OwnerId owner, std::string name = {},
             Nanos pickup_latency = 0)
      : sim_(sim),
        core_(&core),
        owner_(owner),
        name_(std::move(name)),
        pickup_latency_(pickup_latency) {}

  PollServer(const PollServer&) = delete;
  PollServer& operator=(const PollServer&) = delete;

  /// Registers an input queue. Lower `priority` is served first. The queue's
  /// observer is captured by this server. `batch` > 1 lets the server drain
  /// up to that many consecutive items from this input once selected (poll
  /// loops read NIC rings in bursts) before re-scanning priorities.
  ///
  /// With `coalesce` set, the burst is instead drained up-front and served
  /// as ONE core event: the costs of all drained items (or `batch_cost` of
  /// the whole span, when provided) are summed and charged once, and every
  /// sink fires at the batch completion time in FIFO order. Items that
  /// arrive after the drain wait for the next batch — a coalesced burst is
  /// fixed at pick time. Returns the input index.
  std::size_t add_input(BoundedQueue<T>& q, int priority, CostFn cost,
                        Sink sink, CostCategory category = CostCategory::kUser,
                        std::size_t batch = 1, bool coalesce = false,
                        BatchCostFn batch_cost = {}) {
    inputs_.push_back(Input{&q, priority, std::move(cost), std::move(sink),
                            category, batch < 1 ? 1 : batch, coalesce,
                            std::move(batch_cost),
                            /*nonempty=*/!q.empty(), /*class_idx=*/0});
    rebuild_classes();
    const std::size_t idx = inputs_.size() - 1;
    q.set_observer([this, idx] {
      note_nonempty(idx);
      if (pickup_latency_ > 0 && !serving_) {
        sim_.after(pickup_latency_, [this] { maybe_serve(); });
      } else {
        maybe_serve();
      }
    });
    return idx;
  }

  /// Starts/stops the loop. A stopped server leaves queued items in place.
  void start() {
    running_ = true;
    maybe_serve();
  }
  void stop() { running_ = false; }
  bool running() const { return running_; }

  /// Stops the loop and invokes `done` once the item (or batch) currently in
  /// service has completed and been delivered — immediately when already
  /// idle. Queued items stay in place, exactly as with stop(). Used by the
  /// reset-free drain: the backlog may only be migrated after the last
  /// in-flight item has egressed, or a same-flow frame redispatched to an
  /// idle sibling could overtake it.
  void quiesce(std::function<void()> done) {
    running_ = false;
    if (!serving_) {
      done();
      return;
    }
    on_quiesced_ = std::move(done);
  }

  /// Moves the server to a different core (models kernel migration in the
  /// "default" affinity policy). A migration penalty is charged to the new
  /// core as system time.
  void migrate(Core& new_core, Nanos penalty) {
    core_ = &new_core;
    core_->charge(penalty, CostCategory::kSystem);
  }

  Core& core() const { return *core_; }
  OwnerId owner() const { return owner_; }
  const std::string& name() const { return name_; }
  std::uint64_t served() const { return served_; }
  bool busy() const { return serving_; }

  // Telemetry accessors (plain counters; read at snapshot time only).
  /// Core events started — classic serves plus coalesced batch serves.
  std::uint64_t serve_events() const { return serve_events_; }
  /// Coalesced batch serves, and items moved by them. batch_items() /
  /// batches() is the realized coalescing factor.
  std::uint64_t batches() const { return batches_; }
  std::uint64_t batch_items() const { return batch_items_; }

  /// One-shot extra cost added to the next served item (used for e.g. a core
  /// allocation pass that preempts the LVRM loop).
  void add_oneshot_cost(Nanos cost) { oneshot_cost_ += cost; }

  /// Repairs a stale-HIGH non-empty hint after an EXTERNAL pop (a steal,
  /// recovery drain, or shed) emptied the queue behind the scheduler's
  /// back. Without this, a hot input's set hint makes every pick_input
  /// probe the empty queue first — the §9 stale-high repair fires once per
  /// scan instead of once, which on a stolen-dry link degenerates into a
  /// permanent extra probe per serve. Harmless when the queue still holds
  /// items or the hint is already clear.
  void repair_hint(std::size_t idx) {
    Input& in = inputs_[idx];
    if (in.nonempty && in.queue->empty()) {
      in.nonempty = false;
      --classes_[in.class_idx].nonempty_count;
    }
  }

  /// Installs the idle hook (see IdleHook). One per server; replaceable.
  void set_idle_hook(IdleHook hook) { idle_hook_ = std::move(hook); }

  /// Installs a gate predicate on input `idx` (see GateFn).
  void set_input_gate(std::size_t idx, GateFn gate) {
    inputs_[idx].gate = std::move(gate);
  }

  /// True while input `idx` is the one in service (classic item, coalesced
  /// batch, or an unexhausted batch continuation). Stealing from a queue
  /// its own server is mid-burst on would let the thief's frames overtake
  /// the victim's in-service ones.
  bool serving_input(std::size_t idx) const {
    return (serving_ && in_service_idx_ == idx) ||
           (batch_remaining_ > 0 && current_input_ == idx);
  }

  /// Re-arms the scheduler for input `idx` after its gate reopened (or
  /// after external pushes that bypassed the queue observer): refreshes
  /// the hint from the queue's actual state and kicks the serve loop.
  void kick(std::size_t idx) {
    if (!inputs_[idx].queue->empty()) note_nonempty(idx);
    maybe_serve();
  }

  /// Kicks the serve loop; harmless to call at any time.
  void maybe_serve() {
    if (!running_ || serving_) return;
    std::size_t idx = kNoInput;
    if (batch_remaining_ > 0 && current_input_ != kNoInput &&
        !inputs_[current_input_].queue->empty() &&
        gate_open(inputs_[current_input_])) {
      idx = current_input_;
      --batch_remaining_;
    } else {
      idx = pick_input();
      current_input_ = idx;
      // Coalesced inputs consume their whole burst in one serve; the
      // item-by-item continuation applies only to the classic mode.
      batch_remaining_ = (idx == kNoInput || inputs_[idx].coalesce)
                             ? 0
                             : inputs_[idx].batch - 1;
    }
    if (idx == kNoInput) {
      // Nothing serviceable: give the idle hook (work stealing, §17) one
      // chance to manufacture work before the loop parks.
      if (idle_hook_ && !in_idle_hook_) {
        in_idle_hook_ = true;
        const bool retry = idle_hook_();
        in_idle_hook_ = false;
        if (retry) maybe_serve();
      }
      return;
    }
    Input& in = inputs_[idx];
    if (in.coalesce) {
      serve_batch(in);
      return;
    }
    in_service_ = in.queue->pop();
    Nanos cost = in.cost ? in.cost(*in_service_) : 0;
    cost += oneshot_cost_;
    oneshot_cost_ = 0;
    serving_ = true;
    ++serve_events_;
    in_service_input_ = &in;
    in_service_idx_ = idx;
    core_->run(cost, in.category, owner_, [this] { complete_one(); });
  }

 private:
  struct Input {
    BoundedQueue<T>* queue;
    int priority;
    CostFn cost;
    Sink sink;
    CostCategory category;
    std::size_t batch = 1;
    bool coalesce = false;
    BatchCostFn batch_cost;
    // Non-empty hint: set by the queue observer (which fires on every
    // empty->non-empty transition), cleared only when a scan observes the
    // queue actually empty. The hint can therefore be stale-HIGH (external
    // actors — recovery, shedding — pop/clear queues without telling us)
    // but never stale-LOW, so a set hint is always safe to probe and a
    // cleared hint is always safe to skip.
    bool nonempty = false;
    std::size_t class_idx = 0;
    // Optional gate (see GateFn): false = skip without clearing the hint.
    GateFn gate;
  };

  static bool gate_open(const Input& in) { return !in.gate || in.gate(); }

  struct PrioClass {
    int priority;
    std::vector<std::size_t> members;  // input indices, ascending
    std::size_t nonempty_count = 0;    // inputs with the hint set
  };

  static constexpr std::size_t kNoInput =
      std::numeric_limits<std::size_t>::max();

  void note_nonempty(std::size_t idx) {
    Input& in = inputs_[idx];
    if (!in.nonempty) {
      in.nonempty = true;
      ++classes_[in.class_idx].nonempty_count;
    }
  }

  void rebuild_classes() {
    classes_.clear();
    for (const Input& in : inputs_) {
      bool found = false;
      for (const PrioClass& c : classes_)
        if (c.priority == in.priority) found = true;
      if (!found) classes_.push_back(PrioClass{in.priority, {}, 0});
    }
    std::sort(classes_.begin(), classes_.end(),
              [](const PrioClass& a, const PrioClass& b) {
                return a.priority < b.priority;
              });
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      for (std::size_t c = 0; c < classes_.size(); ++c) {
        if (classes_[c].priority == inputs_[i].priority) {
          inputs_[i].class_idx = c;
          classes_[c].members.push_back(i);
          if (inputs_[i].nonempty) ++classes_[c].nonempty_count;
          break;
        }
      }
    }
  }

  /// Highest-priority non-empty input, round-robin within a priority class.
  /// Classes are scanned in ascending priority and the scan stops at the
  /// first class with genuinely pending work — a non-empty control input is
  /// found without inspecting any data queue. Within the class, the member
  /// closest to `rr_cursor_` in cyclic order wins, which is exactly the
  /// input the previous full cyclic scan would have selected.
  std::size_t pick_input() {
    const std::size_t n = inputs_.size();
    for (PrioClass& cls : classes_) {
      if (cls.nonempty_count == 0) continue;
      std::size_t best = kNoInput;
      std::size_t best_rank = n;
      for (std::size_t i : cls.members) {
        Input& in = inputs_[i];
        if (!in.nonempty) continue;
        // Gated input (steal in flight, §17): invisible to the scan, hint
        // intact — the work exists, it is just temporarily owned elsewhere.
        if (!gate_open(in)) continue;
        if (in.queue->empty()) {  // stale-high hint: repair and skip
          in.nonempty = false;
          --cls.nonempty_count;
          continue;
        }
        const std::size_t rank = (i + n - rr_cursor_) % n;
        if (rank < best_rank) {
          best_rank = rank;
          best = i;
        }
      }
      if (best != kNoInput) {
        rr_cursor_ = (best + 1) % n;
        return best;
      }
    }
    return kNoInput;
  }

  /// Classic completion: move the item out of the in-service slot before
  /// invoking the sink, so a reentrant maybe_serve() from inside the sink
  /// can safely refill the slot.
  void complete_one() {
    serving_ = false;
    ++served_;
    Input* in = in_service_input_;
    T item = std::move(*in_service_);
    in_service_.reset();
    if (in->sink) in->sink(std::move(item));
    maybe_serve();
    notify_quiesced();
  }

  /// Coalesced serving: drain up to `in.batch` items now, charge their
  /// summed (or batch-fn) cost as ONE core event — N event-queue insertions
  /// collapse into 1 — and deliver every item at the completion time.
  void serve_batch(Input& in) {
    batch_buf_.clear();
    while (batch_buf_.size() < in.batch && !in.queue->empty())
      batch_buf_.push_back(in.queue->pop());
    Nanos cost = 0;
    if (in.batch_cost) {
      cost = in.batch_cost(std::span<T>(batch_buf_));
    } else if (in.cost) {
      for (T& item : batch_buf_) cost += in.cost(item);
    }
    cost += oneshot_cost_;
    oneshot_cost_ = 0;
    serving_ = true;
    ++serve_events_;
    ++batches_;
    batch_items_ += batch_buf_.size();
    in_service_input_ = &in;
    in_service_idx_ = current_input_;
    core_->run(cost, in.category, owner_, [this] { complete_batch(); });
  }

  void complete_batch() {
    serving_ = false;
    Input* in = in_service_input_;
    // Swap into the drain buffer first: a sink may push into one of our own
    // inputs and reentrantly start the next batch, which refills batch_buf_.
    sink_buf_.clear();
    std::swap(sink_buf_, batch_buf_);
    served_ += sink_buf_.size();
    if (in->sink)
      for (T& item : sink_buf_) in->sink(std::move(item));
    sink_buf_.clear();
    maybe_serve();
    notify_quiesced();
  }

  /// Fires a pending quiesce() callback once service has actually wound
  /// down (stop() keeps maybe_serve() from restarting it).
  void notify_quiesced() {
    if (serving_ || !on_quiesced_) return;
    auto done = std::move(on_quiesced_);
    on_quiesced_ = nullptr;
    done();
  }

  Simulator& sim_;
  Core* core_;
  OwnerId owner_;
  std::string name_;
  std::vector<Input> inputs_;
  std::vector<PrioClass> classes_;
  std::size_t rr_cursor_ = 0;
  Nanos pickup_latency_ = 0;
  std::size_t batch_remaining_ = 0;
  std::size_t current_input_ = kNoInput;
  bool running_ = false;
  bool serving_ = false;
  Nanos oneshot_cost_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t serve_events_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batch_items_ = 0;
  // Zero-alloc serving state: the classic path parks the in-service item in
  // `in_service_`; the coalesced path reuses `batch_buf_`/`sink_buf_`
  // capacity across batches. No per-item heap allocation after warm-up.
  std::optional<T> in_service_;
  Input* in_service_input_ = nullptr;
  std::size_t in_service_idx_ = kNoInput;
  IdleHook idle_hook_;
  bool in_idle_hook_ = false;
  std::function<void()> on_quiesced_;
  std::vector<T> batch_buf_;
  std::vector<T> sink_buf_;
};

}  // namespace lvrm::sim
