// event_queue.hpp — cancellable min-heap of timestamped events.
//
// Ties are broken by insertion sequence so simulation runs are fully
// deterministic regardless of heap internals. Cancellation is lazy: cancelled
// ids are skipped at pop time, which keeps cancel() O(1) — important for TCP
// retransmission timers that are rescheduled on every ACK.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace lvrm::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `cb` to fire at absolute time `at`. Returns a handle usable
  /// with cancel().
  EventId push(Nanos at, Callback cb);

  /// Cancels a pending event; cancelling an already-fired or invalid id is a
  /// harmless no-op.
  void cancel(EventId id);

  bool empty() const { return callbacks_.empty(); }
  std::size_t size() const { return callbacks_.size(); }

  /// Earliest pending event time; only valid when !empty().
  Nanos next_time();

  /// Pops and returns the earliest live event. Only valid when !empty().
  struct Fired {
    Nanos at;
    EventId id;
    Callback cb;
  };
  Fired pop();

 private:
  struct Entry {
    Nanos at;
    EventId id;
    // min-heap on (at, id): earlier time first, then insertion order.
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  /// Discards heap entries whose callback was cancelled.
  void skip_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  EventId next_id_ = 1;
};

}  // namespace lvrm::sim
