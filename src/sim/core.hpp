// core.hpp — a simulated CPU core as a serial execution resource.
//
// A Core runs one piece of work at a time. Work is tagged with an owner id
// (one per pinned process) and a cost category so the simulator can reproduce
// the `top`-style CPU breakdown of Fig 4.3 (user / system / softirq). When
// consecutive work items come from different owners — i.e. two processes
// time-share the core, as in the "same"-core affinity experiment — a context
// switch penalty is charged, which is exactly the effect Exp 2a measures.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace lvrm::sim {

/// CPU-time category, mirroring the columns of `top` used in Fig 4.3.
enum class CostCategory : std::uint8_t {
  kUser = 0,     // us: LVRM / VRI application code
  kSystem,       // sy: syscalls (raw sockets, shm ops, vfork)
  kSoftirq,      // si: kernel network stack servicing interrupts
  kCategoryCount
};

/// Owner id for context-switch tracking (arbitrary small ints; kNoOwner for
/// work that does not belong to a pinned process, e.g. kernel softirq).
using OwnerId = int;
inline constexpr OwnerId kNoOwner = -1;

class Core {
 public:
  Core(Simulator& sim, CoreId id, Nanos context_switch_cost)
      : sim_(sim), id_(id), ctx_cost_(context_switch_cost) {}

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  CoreId id() const { return id_; }

  /// True when the core can start new work right now.
  bool idle() const { return sim_.now() >= busy_until_; }

  Nanos busy_until() const { return busy_until_; }

  /// Runs `cost` nanoseconds of `owner`'s work starting no earlier than now,
  /// invoking `done` at completion. Returns the completion time. If the core
  /// is currently busy the work starts when it frees up (callers that want
  /// explicit queueing — PollServer — only call this when idle()).
  Nanos run(Nanos cost, CostCategory cat, OwnerId owner,
            std::function<void()> done);

  /// Charges cost synchronously without scheduling a callback; used for
  /// cheap bookkeeping work folded into a larger operation.
  void charge(Nanos cost, CostCategory cat);

  /// Moves `amount` of already-charged (or about-to-be-charged) busy time
  /// between accounting categories without touching busy_until. Lets a task
  /// charged wholesale to one category (e.g. a raw-socket recv syscall)
  /// attribute its user-space portion correctly for the Fig 4.3 breakdown.
  void reclassify(CostCategory from, CostCategory to, Nanos amount) {
    busy_[static_cast<std::size_t>(from)] -= amount;
    busy_[static_cast<std::size_t>(to)] += amount;
  }

  /// Busy nanoseconds accumulated in a category since construction/reset.
  Nanos busy(CostCategory cat) const {
    return busy_[static_cast<std::size_t>(cat)];
  }
  Nanos busy_total() const;
  std::uint64_t context_switches() const { return ctx_switches_; }

  void reset_accounting();

 private:
  Simulator& sim_;
  CoreId id_;
  Nanos ctx_cost_;
  Nanos busy_until_ = 0;
  OwnerId last_owner_ = kNoOwner;
  std::array<Nanos, static_cast<std::size_t>(CostCategory::kCategoryCount)>
      busy_{};
  std::uint64_t ctx_switches_ = 0;
};

}  // namespace lvrm::sim
