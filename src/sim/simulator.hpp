// simulator.hpp — the virtual clock and event loop.
//
// Everything in the reproduction that the paper ran on wall-clock hardware
// (links, CPU cores, 1-second allocation periods, TCP timers) runs against
// this clock instead, which makes every figure deterministic and lets a
// "600-second" experiment finish in milliseconds of host time.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace lvrm::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Nanos now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `at` (clamped to now).
  EventId at(Nanos when, EventQueue::Callback cb);

  /// Schedules `cb` after a relative delay.
  EventId after(Nanos delay, EventQueue::Callback cb);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or the clock passes `deadline`, whichever
  /// comes first. Events scheduled exactly at `deadline` still fire.
  void run_until(Nanos deadline);

  /// Runs until the queue drains, with a safety cap on the number of events
  /// (guards against accidental event storms in tests).
  void run_all(std::uint64_t max_events = 500'000'000ULL);

  /// Fires exactly one event if any is pending. Returns false when idle.
  bool step();

  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return queue_.empty(); }

 private:
  Nanos now_ = 0;
  EventQueue queue_;
  std::uint64_t processed_ = 0;
};

}  // namespace lvrm::sim
