// queue.hpp — bounded FIFO used as NIC rings and (simulated) IPC queues.
//
// This is the *simulation-side* queue: a passive bounded buffer with drop
// accounting and an observer hook that wakes the consuming PollServer. The
// real lock-free SPSC ring that the thesis ships between processes lives in
// src/queue/spsc_ring.hpp; inside the simulator, process placement is virtual
// so a plain deque with the same FIFO/bounded semantics stands in for it
// while queue *lengths*, drops and priorities behave identically.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "common/units.hpp"

namespace lvrm::sim {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, std::string name = {})
      : capacity_(capacity), name_(std::move(name)) {}

  /// Attempts to enqueue; returns false (and counts a drop) when full.
  bool push(T item) {
    if (items_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    const bool was_empty = items_.empty();
    items_.push_back(std::move(item));
    ++enqueued_;
    if (was_empty && on_nonempty_) on_nonempty_();
    return true;
  }

  /// Pops the head; only valid when !empty().
  T pop() {
    T item = std::move(items_.front());
    items_.pop_front();
    ++dequeued_;
    return item;
  }

  /// Peeks at the head without removing it; only valid when !empty().
  const T& front() const { return items_.front(); }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t dequeued() const { return dequeued_; }

  const std::string& name() const { return name_; }

  /// Registers the wake-up hook invoked when the queue transitions from
  /// empty to non-empty (at most one observer; the consuming server).
  void set_observer(std::function<void()> fn) { on_nonempty_ = std::move(fn); }

  void clear() { items_.clear(); }

 private:
  std::size_t capacity_;
  std::string name_;
  std::deque<T> items_;
  std::uint64_t drops_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dequeued_ = 0;
  std::function<void()> on_nonempty_;
};

}  // namespace lvrm::sim
