// link.hpp — a point-to-point link with serialization, propagation and a
// bounded transmit queue.
//
// The testbed's 1-Gigabit links are where both line-rate ceilings and TCP
// congestion drops come from: a frame occupies the wire for bytes*8 ns, and
// frames arriving while the transmit queue is full are tail-dropped, which is
// the loss signal TCP Reno reacts to in Experiments 3c and 4.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace lvrm::sim {

class Link {
 public:
  /// `queue_limit` is the transmit-queue depth in frames (excludes the frame
  /// currently on the wire), matching a NIC TX ring.
  Link(Simulator& sim, BitsPerSec rate, Nanos propagation,
       std::size_t queue_limit)
      : sim_(sim),
        rate_(rate),
        propagation_(propagation),
        queue_limit_(queue_limit) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Queues `bytes` for transmission; `deliver` fires at the receiver once
  /// serialization + propagation complete. Returns false (tail drop) when
  /// the transmit queue is full.
  bool transmit(std::int64_t bytes, std::function<void()> deliver);

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t drops() const { return drops_; }
  std::size_t backlog() const { return backlog_; }
  BitsPerSec rate() const { return rate_; }

  /// Nanoseconds the wire has been occupied (for utilization reporting).
  Nanos busy_time() const { return busy_time_; }

 private:
  Simulator& sim_;
  BitsPerSec rate_;
  Nanos propagation_;
  std::size_t queue_limit_;
  Nanos wire_free_at_ = 0;
  std::size_t backlog_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t drops_ = 0;
  Nanos busy_time_ = 0;
};

}  // namespace lvrm::sim
