#include "sim/core.hpp"

#include <algorithm>

namespace lvrm::sim {

Nanos Core::run(Nanos cost, CostCategory cat, OwnerId owner,
                std::function<void()> done) {
  Nanos start = std::max(sim_.now(), busy_until_);
  if (owner != last_owner_ && last_owner_ != kNoOwner && owner != kNoOwner) {
    start += ctx_cost_;
    busy_[static_cast<std::size_t>(CostCategory::kSystem)] += ctx_cost_;
    ++ctx_switches_;
  }
  if (owner != kNoOwner) last_owner_ = owner;
  busy_until_ = start + cost;
  busy_[static_cast<std::size_t>(cat)] += cost;
  if (done) sim_.at(busy_until_, std::move(done));
  return busy_until_;
}

void Core::charge(Nanos cost, CostCategory cat) {
  busy_until_ = std::max(sim_.now(), busy_until_) + cost;
  busy_[static_cast<std::size_t>(cat)] += cost;
}

Nanos Core::busy_total() const {
  Nanos total = 0;
  for (auto b : busy_) total += b;
  return total;
}

void Core::reset_accounting() {
  busy_.fill(0);
  ctx_switches_ = 0;
}

}  // namespace lvrm::sim
