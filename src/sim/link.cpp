#include "sim/link.hpp"

#include <algorithm>

namespace lvrm::sim {

bool Link::transmit(std::int64_t bytes, std::function<void()> deliver) {
  // A frame whose serialization has not begun occupies a TX-ring slot.
  const Nanos now = sim_.now();
  const bool wire_busy = wire_free_at_ > now;
  if (wire_busy && backlog_ >= queue_limit_) {
    ++drops_;
    return false;
  }

  const Nanos start = std::max(now, wire_free_at_);
  const Nanos wire = wire_time(bytes, rate_);
  wire_free_at_ = start + wire;
  busy_time_ += wire;

  if (wire_busy) {
    ++backlog_;
    sim_.at(start, [this] { --backlog_; });
  }

  sim_.at(wire_free_at_ + propagation_,
          [this, deliver = std::move(deliver)]() mutable {
            ++delivered_;
            if (deliver) deliver();
          });
  return true;
}

}  // namespace lvrm::sim
