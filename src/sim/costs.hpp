// costs.hpp — calibrated cost model of the paper's testbed.
//
// Every per-frame/per-operation cost the simulator charges lives here, in one
// place, calibrated against the absolute numbers Chapter 4 reports (see
// DESIGN.md "Calibration constants"). Changing a constant re-shapes every
// dependent figure consistently, which is what makes the ablation benches
// meaningful.
//
// Anchors from the thesis:
//   * 1 Gbps links; minimum Ethernet frame 84 B incl. preamble/IFG (Sec 4.1)
//   * each sender host caps at 224 Kfps -> 448 Kfps testbed ceiling (Sec 4.1)
//   * PF_RING-based LVRM ~ native Linux forwarding; beats raw socket by ~50%
//     at 84 B (Fig 4.2)
//   * LVRM-only (RAM trace) with C++ VR: 3.7 Mfps @84 B, 922 Kfps @1538 B
//     (Fig 4.5); latency <= 15 us C++, 25-35 us Click (Fig 4.6)
//   * control-event latency 5-7 us no-load, 10-12 us full-load (Fig 4.7)
//   * dummy VRI load 1/60 ms -> 60 Kfps per core (Exps 2b-3b)
//   * allocation <= 900 us, deallocation <= 700 us (Fig 4.11)
#pragma once

#include "common/units.hpp"

namespace lvrm::sim::costs {

// --- Links and frames ------------------------------------------------------
inline constexpr BitsPerSec kLinkRate = 1e9;            // 1 GbE
inline constexpr Nanos kLinkPropagation = usec(2);      // host-switch-host
inline constexpr std::size_t kLinkTxQueue = 128;        // NIC TX ring frames
inline constexpr int kMinFrameBytes = 84;    // incl. preamble/IFG (Sec 4.1)
inline constexpr int kMaxFrameBytes = 1538;  // 1500 MTU + eth + preamble/IFG

// --- End hosts --------------------------------------------------------------
// Sender kernel path: 1/224 Kfps per frame (the measured host ceiling).
inline constexpr Nanos kSenderPerFrame = 4464;
// Host stack latency contributions to RTT (each direction, each host).
inline constexpr Nanos kHostTxLatency = usec(14);
inline constexpr Nanos kHostRxLatency = usec(14);

// --- Gateway kernel (native Linux IP forwarding baseline) -------------------
// Softirq cost to forward one frame in-kernel: fixed + per-byte (copy/DMA).
inline constexpr Nanos kKernelForwardFixed = 1900;
inline constexpr double kKernelForwardPerByte = 0.25;  // ns per byte
inline constexpr std::size_t kKernelRxRing = 512;

// --- Socket adapters (LVRM RX/TX on the LVRM core) --------------------------
// Raw BSD socket: recvfrom()/send() syscalls dominate; mostly system time.
inline constexpr Nanos kRawSocketRecv = 2100;
inline constexpr Nanos kRawSocketSend = 1150;
inline constexpr double kRawSocketPerByte = 0.45;  // kernel<->user copies
inline constexpr std::size_t kRawSocketRing = 256;

// Kernel softirq work per frame on the RX side that the adapter cannot
// bypass (interrupt handling, protocol demux for the socket path). Reported
// as "si" in the Fig 4.3 CPU breakdown.
inline constexpr Nanos kRawSocketSoftirq = 900;
inline constexpr Nanos kPfRingSoftirq = 350;

// PF_RING: polls the NIC ring zero-copy; cheap and mostly user time.
inline constexpr Nanos kPfRingRecv = 1100;
inline constexpr Nanos kPfRingSend = 1020;
inline constexpr double kPfRingPerByte = 0.08;
inline constexpr std::size_t kPfRingRing = 4096;

// Main-memory adapter (Exp 1c/1d): sequential reads from a RAM trace and a
// discard sink; only the copy into the IPC queue scales with size.
inline constexpr Nanos kMemoryRecv = 40;
inline constexpr Nanos kMemorySend = 20;
inline constexpr double kMemoryPerByte = 0.55;
inline constexpr std::size_t kMemoryRing = 65536;

// --- LVRM internal per-frame work (user time on the LVRM core) --------------
// One iteration of the non-blocking poll loop passes before newly arrived
// work is noticed when a process was idle (affects latency, not capacity).
inline constexpr Nanos kPollDiscovery = 1200;
// LVRM drains a socket/ring in bursts of this many frames per loop pass.
inline constexpr std::size_t kPollBatch = 6;
inline constexpr Nanos kClassifyCost = 25;      // src-IP -> VR lookup
inline constexpr Nanos kDispatchFixed = 20;     // bookkeeping per dispatch
inline constexpr Nanos kEnqueueCost = 60;      // shm queue insert
inline constexpr Nanos kDequeueCost = 50;      // shm queue extract
inline constexpr Nanos kJsqPerVri = 10;         // JSQ scans each VRI's load
inline constexpr Nanos kRoundRobinCost = 10;
inline constexpr Nanos kRandomCost = 28;
// Flow-based balancing: hash-table lookup plus the times() timestamp update
// the thesis calls out as overhead (Exp 3c).
inline constexpr Nanos kFlowTableLookup = 150;
inline constexpr Nanos kFlowTimestampSyscall = 210;

// Cross-socket penalty per queue operation when producer and consumer cores
// are not siblings (cache-line transfer across the QPI); drives Exp 2a.
inline constexpr Nanos kCrossSocketQueueOp = 200;

// Context switch when two processes time-share one core ("same" affinity).
inline constexpr Nanos kContextSwitch = 1600;
// "default" affinity: kernel migrates the VRI between cores now and then;
// after each migration the caches are cold for a window during which the
// shared-queue operations pay a surcharge (Exp 2a: default < non-sibling).
inline constexpr Nanos kMigrationPenalty = usec(35);  // stall at switch
inline constexpr Nanos kMigrationMeanPeriod = msec(1);
inline constexpr Nanos kColdCacheWindow = usec(400);
inline constexpr Nanos kColdCacheSurcharge = 1200;  // per frame while cold

// --- VRIs --------------------------------------------------------------------
// Minimal C++ VR forwarding work per frame (route lookup + header rewrite).
inline constexpr Nanos kCppVrForward = 130;
inline constexpr double kCppVrPerByte = 0.03;
// Click VR: element-graph traversal overhead on top of forwarding, plus the
// internal Queue element adding pipeline latency (Fig 4.6: 25-35 us).
inline constexpr Nanos kClickVrForward = 3400;
inline constexpr double kClickVrPerByte = 0.12;
inline constexpr Nanos kClickPipelineLatency = usec(18);
// The dummy processing load used by Exps 2b-3b: 1/60 ms per frame.
inline constexpr Nanos kDummyLoad = kNanosPerSec / 60'000;

// --- Stateful VRs (DESIGN.md §16) -------------------------------------------
// Per-frame cost of the stateful step layered on the inner forwarder: one
// hash-table probe plus a small header rewrite / state-machine update.
inline constexpr Nanos kNatTranslate = 180;
inline constexpr Nanos kConnTrack = 160;
inline constexpr Nanos kTokenBucketCheck = 90;
// State-compute replication: serializing one StateDelta onto the control
// ring at the owner, and installing one at a sibling. Deltas are tiny
// fixed-size records — far cheaper than the full control-event path used
// for route updates (no marshalling, no ack bookkeeping).
inline constexpr Nanos kStateDeltaEmit = 70;
inline constexpr Nanos kStateDeltaApply = 150;

// IPC data queue between LVRM and each VRI (frames).
inline constexpr std::size_t kDataQueueCapacity = 1024;
inline constexpr std::size_t kControlQueueCapacity = 256;

// Control events: enqueue/dequeue plus per-byte copy; receiver polls the
// control queue before the data queue, so under full load the event waits
// for the in-service data frame (Exp 1e: 5-7 us idle, 10-12 us loaded).
inline constexpr Nanos kControlEventFixed = 2500;
inline constexpr double kControlEventPerByte = 0.55;
inline constexpr double kControlRelayPerByte = 0.15;

// --- Core (de)allocation (Fig 4.11) -----------------------------------------
// Allocation: vfork() + queue/shm setup; grows slightly with the number of
// VR monitors/VRIs LVRM must iterate over. Deallocation: kill() + teardown.
// The reaction time reported by Exp 2c includes iterating the VR monitors
// and retrieving/comparing load estimates before the action itself.
inline constexpr Nanos kAllocateBase = usec(610);
inline constexpr Nanos kAllocatePerVri = usec(28);
inline constexpr Nanos kDeallocateBase = usec(420);
inline constexpr Nanos kDeallocatePerVri = usec(24);
inline constexpr Nanos kAllocIterateBase = usec(2);
inline constexpr Nanos kAllocIteratePerVri = usec(2);
inline constexpr double kAllocJitter = 0.08;  // +/- fraction, deterministic rng

// --- Health monitoring & recovery (robustness layer) ------------------------
// One heartbeat pass: LVRM reads each VRI's progress counter and queue depth
// out of the shared-memory segments — a handful of cache lines per VRI.
inline constexpr Nanos kHealthProbeBase = usec(1);
inline constexpr Nanos kHealthProbePerVri = 300;
// Respawning a quarantined VRI replays the VR's dynamic route-update log
// into the fresh process so it starts consistent with its siblings.
inline constexpr Nanos kRouteReplayPerUpdate = 500;
// Re-dispatching one stranded frame from a dead VRI's queue to a survivor.
inline constexpr Nanos kRedispatchPerFrame = kDequeueCost + kEnqueueCost;

// --- Hypervisor baselines (Exp 1a/1b) ---------------------------------------
// Per-frame virtualization overhead (vmexits, virtual NIC emulation) and the
// extra latency of traversing hypervisor + guest kernel both ways.
inline constexpr Nanos kVmwarePerFrame = 11'500;
inline constexpr double kVmwarePerByte = 0.9;
inline constexpr Nanos kVmwareLatency = usec(160);
inline constexpr Nanos kKvmPerFrame = 39'000;
inline constexpr double kKvmPerByte = 2.1;
inline constexpr Nanos kKvmLatency = usec(360);

// --- TCP / FTP workload (Exps 3c, 4) ----------------------------------------
inline constexpr int kTcpSegmentBytes = 1538;  // full-size data segment
inline constexpr int kTcpAckBytes = 84;        // bare ACK at minimum size
inline constexpr int kTcpInitialCwnd = 2;      // segments
inline constexpr int kTcpRxWindowSegments = 44;  // ~64 KB window
inline constexpr Nanos kTcpMinRto = msec(200);
// FTP endpoints read from sockets and write files; the thesis notes this
// schedulng limits source rates (Sec 4.5). Modelled as a per-connection
// application drain rate below link speed.
inline constexpr BitsPerSec kFtpAppDrainRate = 820e6;

}  // namespace lvrm::sim::costs
