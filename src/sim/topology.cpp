#include "sim/topology.hpp"

namespace lvrm::sim {

std::vector<CoreId> CpuTopology::siblings_of(CoreId core) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < total_cores(); ++c)
    if (c != core && siblings(c, core)) out.push_back(c);
  return out;
}

std::vector<CoreId> CpuTopology::non_siblings_of(CoreId core) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < total_cores(); ++c)
    if (!siblings(c, core)) out.push_back(c);
  return out;
}

std::vector<CoreId> CpuTopology::machine_peers_of(CoreId core) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < total_cores(); ++c)
    if (!siblings(c, core) && same_machine(c, core)) out.push_back(c);
  return out;
}

}  // namespace lvrm::sim
