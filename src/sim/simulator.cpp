#include "sim/simulator.hpp"

#include <algorithm>

namespace lvrm::sim {

EventId Simulator::at(Nanos when, EventQueue::Callback cb) {
  return queue_.push(std::max(when, now_), std::move(cb));
}

EventId Simulator::after(Nanos delay, EventQueue::Callback cb) {
  return queue_.push(now_ + std::max<Nanos>(delay, 0), std::move(cb));
}

void Simulator::run_until(Nanos deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) step();
  now_ = std::max(now_, deadline);
}

void Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && fired < max_events) {
    step();
    ++fired;
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = std::max(now_, fired.at);
  ++processed_;
  fired.cb();
  return true;
}

}  // namespace lvrm::sim
