// topology.hpp — model of the testbed gateway's CPU layout.
//
// The paper's gateway is a dual-socket machine with two quad-core Xeon E5530
// CPUs (8 cores total). Core affinity matters to LVRM: allocating a VRI on a
// *sibling* core (same socket as LVRM) avoids cross-socket cache-line
// transfers on every shared-memory queue operation (Sec 3.2, Exp 2a).
//
// Beyond the paper's single box, the topology can describe a multi-socket
// NUMA *cluster*: `sockets_per_machine` groups sockets into machines, so a
// sharded dispatch plane (DESIGN.md §11) can reason about three affinity
// tiers — same socket (shared LLC), same machine (QPI hop), other machine
// (interconnect). The default keeps every socket on one machine, which
// collapses the model back to the paper's gateway.
#pragma once

#include <cstdint>
#include <vector>

namespace lvrm::sim {

using CoreId = int;
inline constexpr CoreId kNoCore = -1;

class CpuTopology {
 public:
  /// Default mirrors the paper's gateway: 2 sockets x 4 cores, one machine.
  /// `sockets_per_machine` <= 0 means "all sockets on one machine".
  explicit CpuTopology(int sockets = 2, int cores_per_socket = 4,
                       int sockets_per_machine = 0)
      : sockets_(sockets),
        cores_per_socket_(cores_per_socket),
        sockets_per_machine_(
            sockets_per_machine > 0 ? sockets_per_machine : sockets) {}

  int total_cores() const { return sockets_ * cores_per_socket_; }
  int sockets() const { return sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }
  int sockets_per_machine() const { return sockets_per_machine_; }
  int machines() const {
    return (sockets_ + sockets_per_machine_ - 1) / sockets_per_machine_;
  }

  int socket_of(CoreId core) const { return core / cores_per_socket_; }
  int machine_of(CoreId core) const {
    return socket_of(core) / sockets_per_machine_;
  }

  /// True when both cores share a socket ("sibling" in the thesis' sense).
  bool siblings(CoreId a, CoreId b) const {
    return socket_of(a) == socket_of(b);
  }

  /// True when both cores live on the same physical machine (possibly on
  /// different sockets). Siblings are always same-machine.
  bool same_machine(CoreId a, CoreId b) const {
    return machine_of(a) == machine_of(b);
  }

  /// All core ids on the same socket as `core`, excluding `core` itself.
  std::vector<CoreId> siblings_of(CoreId core) const;

  /// All core ids on other sockets.
  std::vector<CoreId> non_siblings_of(CoreId core) const;

  /// Cores on the same machine as `core` but on a *different* socket —
  /// the middle tier of the two-level preference (DESIGN.md §11).
  std::vector<CoreId> machine_peers_of(CoreId core) const;

 private:
  int sockets_;
  int cores_per_socket_;
  int sockets_per_machine_;
};

}  // namespace lvrm::sim
