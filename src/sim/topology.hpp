// topology.hpp — model of the testbed gateway's CPU layout.
//
// The paper's gateway is a dual-socket machine with two quad-core Xeon E5530
// CPUs (8 cores total). Core affinity matters to LVRM: allocating a VRI on a
// *sibling* core (same socket as LVRM) avoids cross-socket cache-line
// transfers on every shared-memory queue operation (Sec 3.2, Exp 2a).
#pragma once

#include <cstdint>
#include <vector>

namespace lvrm::sim {

using CoreId = int;
inline constexpr CoreId kNoCore = -1;

class CpuTopology {
 public:
  /// Default mirrors the paper's gateway: 2 sockets x 4 cores.
  explicit CpuTopology(int sockets = 2, int cores_per_socket = 4)
      : sockets_(sockets), cores_per_socket_(cores_per_socket) {}

  int total_cores() const { return sockets_ * cores_per_socket_; }
  int sockets() const { return sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }

  int socket_of(CoreId core) const { return core / cores_per_socket_; }

  /// True when both cores share a socket ("sibling" in the thesis' sense).
  bool siblings(CoreId a, CoreId b) const {
    return socket_of(a) == socket_of(b);
  }

  /// All core ids on the same socket as `core`, excluding `core` itself.
  std::vector<CoreId> siblings_of(CoreId core) const;

  /// All core ids on other sockets.
  std::vector<CoreId> non_siblings_of(CoreId core) const;

 private:
  int sockets_;
  int cores_per_socket_;
};

}  // namespace lvrm::sim
