#!/usr/bin/env python3
"""Validates a telemetry export triple (<prefix>.prom/.csv/.trace.json).

Used by CI's telemetry smoke step: after an experiment runs with
--telemetry-dir, every export prefix found in the directory must hold a
parseable Prometheus text file with the core LVRM families, an RFC-4180 CSV
series, and a Chrome trace_event JSON that a trace viewer (Perfetto,
chrome://tracing) would accept.

Usage: validate_telemetry.py DIR [DIR...] [--check-doc METRICS.md]
Exits non-zero with a per-file message on the first malformed export.

With --check-doc, every metric family found in the .prom exports and every
audit-event name found in the .trace.json exports must appear (backticked)
in the given reference doc — docs/METRICS.md stays honest by construction:
adding a metric or audit kind without documenting it fails CI.
"""
import csv
import json
import pathlib
import re
import sys

REQUIRED_FAMILIES = [
    "lvrm_rx_frames_total",
    "lvrm_tx_frames_total",
    "lvrm_e2e_latency_ns",
]

# name{labels} value   |   name value
PROM_SAMPLE = re.compile(
    r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? [-+0-9eE.infa]+$")
PROM_META = re.compile(r"^# (TYPE|HELP) [A-Za-z_:][A-Za-z0-9_:]*( .*)?$")


def fail(msg):
    print(f"validate_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_prom(path):
    text = path.read_text()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            if not PROM_META.match(line):
                fail(f"{path}: bad comment line: {line!r}")
        elif not PROM_SAMPLE.match(line):
            fail(f"{path}: unparseable sample line: {line!r}")
    for family in REQUIRED_FAMILIES:
        if family not in text:
            fail(f"{path}: missing required family {family}")
    # Histogram buckets must be cumulative: monotone counts, +Inf == _count.
    for family in ["lvrm_e2e_latency_ns"]:
        counts = [
            float(m.group(2))
            for m in re.finditer(
                rf'^{family}_bucket{{le="([^"]+)"}} ([0-9.eE+]+)$',
                text, re.M)
        ]
        if not counts:
            fail(f"{path}: {family} has no bucket series")
        if counts != sorted(counts):
            fail(f"{path}: {family} buckets are not cumulative")
        total = re.search(rf"^{family}_count ([0-9.eE+]+)$", text, re.M)
        if not total or float(total.group(1)) != counts[-1]:
            fail(f"{path}: {family} +Inf bucket disagrees with _count")


def check_csv(path):
    with path.open(newline="") as f:
        rows = list(csv.reader(f))
    if not rows or rows[0] != ["t_sec", "metric", "labels", "value"]:
        fail(f"{path}: bad header {rows[:1]!r}")
    if len(rows) < 2:
        fail(f"{path}: no data rows")
    for i, row in enumerate(rows[1:], start=2):
        if len(row) != 4:
            fail(f"{path}:{i}: expected 4 fields, got {len(row)}")
        try:
            float(row[0])
            float(row[3])
        except ValueError:
            fail(f"{path}:{i}: non-numeric t_sec/value in {row!r}")


def check_trace(path):
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing traceEvents array")
    for ev in events:
        if "ph" not in ev or "name" not in ev:
            fail(f"{path}: event without ph/name: {ev!r}")
        if ev["ph"] != "M" and not isinstance(ev.get("ts"), (int, float)):
            fail(f"{path}: non-metadata event without numeric ts: {ev!r}")


HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def prom_families(path):
    """Metric family names in a .prom file, histogram suffixes stripped."""
    families = set()
    for line in path.read_text().splitlines():
        m = re.match(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{| )", line)
        if not m:
            continue
        name = m.group(1)
        for suffix in HIST_SUFFIXES:
            if name.endswith(suffix):
                name = name[: -len(suffix)]
                break
        families.add(name)
    return families


def trace_names(path):
    """Audit-event names in a .trace.json, VR ids normalized to <N>."""
    names = set()
    for ev in json.loads(path.read_text()).get("traceEvents", []):
        names.add(re.sub(r"^vr\d+ ", "vr<N> ", ev.get("name", "")))
    return names


def check_doc(doc_path, prefixes):
    """Every exported family / audit name must be documented (backticked)."""
    doc = pathlib.Path(doc_path)
    if not doc.exists():
        fail(f"{doc}: reference doc not found")
    documented = set(re.findall(r"`([^`]+)`", doc.read_text()))
    for prefix in prefixes:
        prom = prefix.parent / (prefix.name + ".prom")
        for family in sorted(prom_families(prom)):
            if family not in documented:
                fail(f"{prom}: family {family} is exported but not "
                     f"documented in {doc}")
        trace = prefix.parent / (prefix.name + ".trace.json")
        for name in sorted(trace_names(trace)):
            if name and name not in documented:
                fail(f"{trace}: audit event {name!r} is exported but not "
                     f"documented in {doc}")
    print(f"validate_telemetry: OK doc cross-check against {doc}")


def main(argv):
    doc = None
    args = []
    it = iter(argv[1:])
    for a in it:
        if a == "--check-doc":
            doc = next(it, None)
            if doc is None:
                fail("--check-doc requires a path")
        elif a.startswith("--check-doc="):
            doc = a.split("=", 1)[1]
        else:
            args.append(a)
    if not args:
        fail("usage: validate_telemetry.py DIR [DIR...] "
             "[--check-doc METRICS.md]")
    prefixes = []
    for d in args:
        prefixes += [p.with_suffix("") for p in pathlib.Path(d).glob("*.prom")]
    if not prefixes:
        fail(f"no .prom exports found under {args}")
    for prefix in prefixes:
        for suffix, check in ((".prom", check_prom), (".csv", check_csv),
                              (".trace.json", check_trace)):
            path = prefix.parent / (prefix.name + suffix)
            if not path.exists():
                fail(f"{path}: missing (incomplete export triple)")
            check(path)
        print(f"validate_telemetry: OK {prefix}.{{prom,csv,trace.json}}")
    if doc is not None:
        check_doc(doc, prefixes)


if __name__ == "__main__":
    main(sys.argv)
