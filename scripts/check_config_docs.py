#!/usr/bin/env python3
"""Keeps README.md's `LvrmConfig` reference table complete.

Parses `src/lvrm/config.hpp` for every field of `LvrmConfig` — recursing
into the nested config structs defined in the same header (HealthConfig,
OverloadConfig, StateReplicationConfig, ...) — and fails if a field has no
backticked mention in README.md's configuration-reference table. A nested
field `overload_control.sample_watermark` is satisfied by either the
dotted form or the bare field name (the table groups related knobs into
one row, e.g. "`overload_control.escalate_pressure` / `relax_pressure`").
Struct-typed fields whose definition lives in another header (the obs::
configs) are satisfied by any documented `member.*` knob.

Usage: check_config_docs.py [ROOT]
Prints every undocumented field and exits non-zero if any were found.
"""
import pathlib
import re
import sys

STRUCT = re.compile(r"^struct\s+(\w+)\s*\{", re.MULTILINE)
# "type name = default;" or "type name;" at one level of struct nesting.
# Types may be qualified / templated (std::uint64_t, obs::TracingConfig,
# std::vector<net::Prefix>); methods and using-decls don't match.
FIELD = re.compile(
    r"^\s{2}(?:static\s+)?(?:constexpr\s+)?"
    r"(?P<type>[\w:]+(?:<[^;=(){}]*>)?)\s+"
    r"(?P<name>\w+)\s*(?:=\s*[^;]+)?;",
    re.MULTILINE,
)


def struct_bodies(text):
    """Map struct name -> body text (brace-matched, tolerates nesting)."""
    bodies = {}
    for m in STRUCT.finditer(text):
        depth, i = 1, m.end()
        while i < len(text) and depth:
            depth += {"{": 1, "}": -1}.get(text[i], 0)
            i += 1
        bodies[m.group(1)] = text[m.end():i - 1]
    return bodies


def fields_of(body):
    return [(m.group("type"), m.group("name")) for m in FIELD.finditer(body)]


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    header = root / "src" / "lvrm" / "config.hpp"
    readme = root / "README.md"
    bodies = struct_bodies(header.read_text(encoding="utf-8"))
    if "LvrmConfig" not in bodies:
        print(f"error: no LvrmConfig struct found in {header}")
        return 1
    # Strip fenced code blocks first: a ``` fence is itself a backtick run,
    # and pairing backticks across fences would swallow the inline code
    # spans between them.
    prose = re.sub(r"^```.*?^```$", "", readme.read_text(encoding="utf-8"),
                   flags=re.MULTILINE | re.DOTALL)
    documented = set(re.findall(r"`([^`]+)`", prose))

    missing = []
    for ftype, name in fields_of(bodies["LvrmConfig"]):
        base = ftype.rsplit("::", 1)[-1]
        if base in bodies:  # nested config struct defined in this header
            for _, sub in fields_of(bodies[base]):
                if f"{name}.{sub}" not in documented and sub not in documented:
                    missing.append(f"{name}.{sub}")
        elif ftype.startswith("obs::"):  # documented knob-by-knob elsewhere
            if not any(d.startswith(f"{name}.") for d in documented):
                missing.append(f"{name}.*")
        elif name not in documented:
            missing.append(name)

    if missing:
        print(f"{readme}: LvrmConfig fields missing from the configuration "
              f"reference table (add a backticked row per field):")
        for name in missing:
            print(f"  {name}")
        return 1
    print(f"check_config_docs: every LvrmConfig field of {header.name} is "
          f"documented in {readme.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
