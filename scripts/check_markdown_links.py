#!/usr/bin/env python3
"""Checks every relative link and heading anchor in the repo's markdown.

For each tracked *.md file, every inline link `[text](target)` is resolved:

* `http(s)://` / `mailto:` targets are skipped (no network in CI),
* a relative path must exist in the repository,
* a `#fragment` (on another file or bare, same-file) must match a heading
  in the target file under GitHub's anchor slugification (lowercase, spaces
  to hyphens, punctuation stripped, duplicate slugs suffixed -1, -2, ...).

Usage: check_markdown_links.py [ROOT]
Prints every broken link and exits non-zero if any were found.
"""
import pathlib
import re
import subprocess
import sys

# Inline links, excluding images; tolerates one level of nested brackets in
# the text (e.g. [see [1]](url)).
LINK = re.compile(r"(?<!\!)\[(?:[^\]\[]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading, seen):
    """GitHub's anchor algorithm: strip markup, lowercase, drop punctuation,
    spaces to hyphens, then -N suffixes for duplicates."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]", "", text)                      # emphasis markers
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def anchors_of(path, cache={}):
    if path not in cache:
        seen = {}
        anchors = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
            # Explicit HTML anchors also count.
            for a in re.findall(r'<a\s+(?:name|id)="([^"]+)"', line):
                anchors.add(a)
        cache[path] = anchors
    return cache[path]


def links_of(path):
    """(lineno, target) pairs outside code fences."""
    out = []
    in_fence = False
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines(),
                             start=1):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK.finditer(line):
            out.append((i, m.group(1)))
    return out


def markdown_files(root):
    try:
        names = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"], cwd=root, check=True,
            capture_output=True, text=True).stdout.split()
        files = [root / n for n in names]
    except (subprocess.CalledProcessError, FileNotFoundError):
        files = [p for p in root.rglob("*.md")
                 if "build" not in p.parts and ".git" not in p.parts]
    return sorted(set(f for f in files if f.exists()))


def main(argv):
    root = pathlib.Path(argv[1] if len(argv) > 1 else ".").resolve()
    errors = 0
    checked = 0
    for md in markdown_files(root):
        for lineno, target in links_of(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            checked += 1
            path_part, _, fragment = target.partition("#")
            dest = md if not path_part else (md.parent / path_part).resolve()
            if not dest.exists():
                print(f"{md.relative_to(root)}:{lineno}: broken link "
                      f"{target!r} (no such file)")
                errors += 1
                continue
            if fragment and dest.suffix == ".md":
                if fragment.lower() not in anchors_of(dest):
                    print(f"{md.relative_to(root)}:{lineno}: broken anchor "
                          f"{target!r} (no heading #{fragment} in "
                          f"{dest.relative_to(root)})")
                    errors += 1
    if errors:
        print(f"check_markdown_links: {errors} broken link(s)")
        return 1
    print(f"check_markdown_links: OK ({checked} relative links checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
