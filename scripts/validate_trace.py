#!/usr/bin/env python3
"""Schema-checks §15 path-span Chrome traces and flight-recorder dumps.

validate_telemetry.py proves an export triple is *parseable*; this checker
proves the tracing-specific content is *well-formed*: every span slice sits
on a named track, durations are non-negative, flow arrows pair up, drop
instants carry a cause, and flight dumps are time-ordered black boxes. CI's
trace-smoke job runs an experiment with tracing on and feeds the resulting
.trace.json (and any flight_*.json dumps) through here, so a refactor that
breaks what Perfetto would render fails before it ships.

Usage: validate_trace.py DIR_OR_FILE [DIR_OR_FILE...] [--require-spans]

Directories are globbed for *.trace.json and flight_*.json. With
--require-spans, at least one path-span slice must exist across all trace
files (the smoke run uses it so "tracing silently off" cannot pass).
Exits non-zero with a per-file message on the first malformed input.
"""
import json
import pathlib
import sys

# Span slices emitted by write_chrome_trace for sampled frames (§15).
SPAN_SLICES = {"dispatch", "queue_wait", "service", "tx_drain"}
# Duration events emitted from the audit trail.
AUDIT_SLICES = {"shed"}
KNOWN_X = SPAN_SLICES | AUDIT_SLICES
# TraceHop names as serialized into flight-dump records.
HOPS = {"rx_ingress", "dispatch", "vri_start", "vri_end", "tx_drain", "drop"}
# FlightDumpCause names as serialized into the dump "reason" field.
DUMP_REASONS = {"vri_crash", "quarantine", "admission", "pool_exhausted",
                "manual", "unknown"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_trace(path):
    """Returns the number of §15 path-span slices found in the file."""
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing traceEvents array")

    named_tids = set()     # tids with thread_name metadata
    span_tids = set()      # tids used by §15 span slices
    flow_starts = {}       # id -> count of ph:"s"
    flow_ends = {}         # id -> count of ph:"f"
    spans = 0
    for ev in events:
        ph, name = ev.get("ph"), ev.get("name")
        if not isinstance(ph, str) or not isinstance(name, str) or not name:
            fail(f"{path}: event without ph/name: {ev!r}")
        if ph == "M":
            if name == "thread_name":
                named_tids.add(ev.get("tid"))
            continue
        if not is_num(ev.get("ts")):
            fail(f"{path}: non-metadata event without numeric ts: {ev!r}")
        if ev["ts"] < 0:
            fail(f"{path}: negative ts: {ev!r}")
        if ph == "X":
            if not is_num(ev.get("dur")) or ev["dur"] < 0:
                fail(f"{path}: X event without numeric dur>=0: {ev!r}")
            if name in SPAN_SLICES:
                spans += 1
                span_tids.add(ev.get("tid"))
                if not is_num(ev.get("args", {}).get("frame")):
                    fail(f"{path}: span slice without args.frame: {ev!r}")
            elif name not in KNOWN_X:
                fail(f"{path}: unknown X slice name {name!r}")
        elif ph in ("s", "f"):
            if name != "frame_path":
                fail(f"{path}: flow event with name {name!r}: {ev!r}")
            if not is_num(ev.get("id")):
                fail(f"{path}: flow event without numeric id: {ev!r}")
            (flow_starts if ph == "s" else flow_ends).setdefault(
                ev["id"], 0)
            if ph == "s":
                flow_starts[ev["id"]] += 1
            else:
                flow_ends[ev["id"]] += 1
        elif ph == "i":
            if name == "frame_drop":
                args = ev.get("args", {})
                if not is_num(args.get("frame")) or not is_num(
                        args.get("cause")):
                    fail(f"{path}: frame_drop without frame/cause: {ev!r}")
                span_tids.add(ev.get("tid"))
        elif ph not in ("C",):
            fail(f"{path}: unknown event phase {ph!r}: {ev!r}")

    for tid in sorted(t for t in span_tids if t not in named_tids):
        fail(f"{path}: span track tid {tid} has no thread_name metadata")
    for fid, n in sorted(flow_starts.items()):
        if flow_ends.get(fid, 0) != n:
            fail(f"{path}: flow id {fid} has {n} starts but "
                 f"{flow_ends.get(fid, 0)} finishes")
    for fid in sorted(set(flow_ends) - set(flow_starts)):
        fail(f"{path}: flow id {fid} finishes without a start")
    print(f"validate_trace: OK {path} "
          f"({spans} span slices, {len(flow_starts)} flow arrows)")
    return spans


def check_flight_dump(path):
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")
    for field in ("reason", "t_us", "seq", "shard", "vr", "vri",
                  "records_total", "records"):
        if field not in doc:
            fail(f"{path}: missing field {field!r}")
    if doc["reason"] not in DUMP_REASONS:
        fail(f"{path}: unknown dump reason {doc['reason']!r}")
    records = doc["records"]
    if not isinstance(records, list):
        fail(f"{path}: records is not an array")
    if doc["records_total"] < len(records):
        fail(f"{path}: records_total {doc['records_total']} < "
             f"retained {len(records)}")
    last_t = None
    for i, r in enumerate(records):
        for field in ("frame", "t_us", "hop", "vr", "vri", "shard",
                      "aux", "sampled"):
            if field not in r:
                fail(f"{path}: record {i} missing {field!r}")
        if r["hop"] not in HOPS:
            fail(f"{path}: record {i} has unknown hop {r['hop']!r}")
        if not is_num(r["t_us"]) or r["t_us"] > doc["t_us"]:
            fail(f"{path}: record {i} timestamped after the dump itself")
        if last_t is not None and r["t_us"] < last_t:
            fail(f"{path}: records not time-ordered at index {i}")
        last_t = r["t_us"]
    print(f"validate_trace: OK {path} "
          f"({len(records)} records, reason={doc['reason']})")


def main(argv):
    require_spans = False
    args = []
    for a in argv[1:]:
        if a == "--require-spans":
            require_spans = True
        else:
            args.append(a)
    if not args:
        fail("usage: validate_trace.py DIR_OR_FILE [DIR_OR_FILE...] "
             "[--require-spans]")
    traces, dumps = [], []
    for a in args:
        p = pathlib.Path(a)
        if p.is_dir():
            traces += sorted(p.glob("*.trace.json"))
            dumps += sorted(p.glob("flight_*.json"))
        elif p.name.startswith("flight_"):
            dumps.append(p)
        else:
            traces.append(p)
    if not traces and not dumps:
        fail(f"no *.trace.json or flight_*.json found under {args}")
    total_spans = 0
    for path in traces:
        if not path.exists():
            fail(f"{path}: not found")
        total_spans += check_trace(path)
    for path in dumps:
        check_flight_dump(path)
    if require_spans and total_spans == 0:
        fail("no path-span slices found across any trace "
             "(--require-spans: is tracing actually enabled?)")


if __name__ == "__main__":
    main(sys.argv)
