#!/usr/bin/env python3
"""Appends one bench_hotpath run to a JSONL history file.

bench_hotpath emits a flat {key: number} JSON per run; CI's bench-smoke job
compares only the regression-gate key against the committed baseline and
throws the rest away. This script keeps it instead: each run becomes one
line of BENCH_history.jsonl, stamped with a UTC timestamp and the git
revision, so perf trends across PRs can be plotted from the repo alone.

Usage: bench_history.py RESULTS.json [--history BENCH_history.jsonl]
                        [--label LABEL]

Exits non-zero if the results file is missing or not a JSON object.
"""
import argparse
import datetime
import json
import pathlib
import subprocess
import sys


def git_rev():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="bench_hotpath JSON output file")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="JSONL file to append to (default: %(default)s)")
    parser.add_argument("--label", default="",
                        help="free-form tag for this run (e.g. CI job name)")
    args = parser.parse_args()

    path = pathlib.Path(args.results)
    try:
        results = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_history: cannot read {path}: {err}")
    if not isinstance(results, dict):
        sys.exit(f"bench_history: {path} is not a flat JSON object")

    entry = {
        "time": datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "rev": git_rev(),
        "results": results,
    }
    if args.label:
        entry["label"] = args.label

    history = pathlib.Path(args.history)
    with history.open("a") as out:
        out.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"bench_history: appended {path} @ {entry['rev']} -> {history}")


if __name__ == "__main__":
    main()
